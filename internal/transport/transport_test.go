package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/netemu"
	"repro/internal/qos"
)

// node bundles a directory and transport module on one emulated host.
type node struct {
	name string
	dir  *directory.Directory
	mod  *Module
}

func newNode(t *testing.T, net *netemu.Network, name string) *node {
	t.Helper()
	var host *netemu.Host
	if net != nil {
		host = net.MustAddHost(name)
	}
	dir := directory.New(name, host, directory.Options{AnnounceInterval: 20 * time.Millisecond})
	if err := dir.Start(); err != nil {
		t.Fatalf("directory start: %v", err)
	}
	mod := New(name, host, dir, Options{DeliverTimeout: 2 * time.Second})
	if err := mod.Start(); err != nil {
		t.Fatalf("transport start: %v", err)
	}
	t.Cleanup(func() {
		mod.Close()
		dir.Close()
	})
	return &node{name: name, dir: dir, mod: mod}
}

// register creates a translator on the node and binds it to the
// transport sink.
func (n *node) register(t *testing.T, tr core.Translator) {
	t.Helper()
	tr.Bind(n.mod)
	if err := n.dir.AddLocal(tr); err != nil {
		t.Fatalf("AddLocal: %v", err)
	}
}

// producer is a translator with one digital output port.
func producer(node, local string, typ core.DataType) *core.Base {
	return core.MustBase(core.Profile{
		ID:       core.MakeTranslatorID(node, "umiddle", local),
		Name:     local,
		Platform: "umiddle",
		Node:     node,
		Shape: core.MustShape(
			core.Port{Name: "out", Kind: core.Digital, Direction: core.Output, Type: typ},
		),
	})
}

// collector is a translator with one digital input port that records
// deliveries.
type collector struct {
	*core.Base
	mu   sync.Mutex
	msgs []core.Message
	ch   chan core.Message
}

func newCollector(node, local string, typ core.DataType) *collector {
	c := &collector{
		Base: core.MustBase(core.Profile{
			ID:       core.MakeTranslatorID(node, "umiddle", local),
			Name:     local,
			Platform: "umiddle",
			Node:     node,
			Shape: core.MustShape(
				core.Port{Name: "in", Kind: core.Digital, Direction: core.Input, Type: typ},
			),
		}),
		ch: make(chan core.Message, 256),
	}
	c.MustHandle("in", func(_ context.Context, msg core.Message) error {
		// Retained past Deliver: the tracked zero-copy contract requires
		// copying out of the delivery buffer first.
		msg = msg.Clone()
		c.mu.Lock()
		c.msgs = append(c.msgs, msg)
		c.mu.Unlock()
		select {
		case c.ch <- msg:
		default:
		}
		return nil
	})
	return c
}

func (c *collector) wait(t *testing.T, d time.Duration) core.Message {
	t.Helper()
	select {
	case m := <-c.ch:
		return m
	case <-time.After(d):
		t.Fatal("no message delivered in time")
		return core.Message{}
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func portRef(tr core.Translator, port string) core.PortRef {
	return core.PortRef{Translator: tr.Profile().ID, Port: port}
}

func TestLocalStaticPath(t *testing.T) {
	n := newNode(t, nil, "h1")
	src := producer("h1", "camera", "image/jpeg")
	dst := newCollector("h1", "tv", "image/jpeg")
	n.register(t, src)
	n.register(t, dst)

	id, err := n.mod.Connect(portRef(src, "out"), portRef(dst, "in"))
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src.Emit("out", core.NewMessage("image/jpeg", []byte("frame-1")))
	got := dst.wait(t, 2*time.Second)
	if string(got.Payload) != "frame-1" {
		t.Fatalf("payload = %q", got.Payload)
	}
	if got.Seq != 1 {
		t.Fatalf("seq = %d, want 1", got.Seq)
	}
	if got.Source != portRef(src, "out") {
		t.Fatalf("source = %v", got.Source)
	}

	stats, ok := n.mod.PathStats(id)
	if !ok || stats.Delivered != 1 || stats.Bytes != 7 {
		t.Fatalf("stats = %+v, %v", stats, ok)
	}
}

func TestConnectValidation(t *testing.T) {
	n := newNode(t, nil, "h1")
	src := producer("h1", "camera", "image/jpeg")
	dst := newCollector("h1", "printer", "text/ps")
	n.register(t, src)
	n.register(t, dst)

	// Incompatible types.
	if _, err := n.mod.Connect(portRef(src, "out"), portRef(dst, "in")); !errors.Is(err, ErrIncompatible) {
		t.Errorf("incompatible connect err = %v", err)
	}
	// Unknown source translator.
	if _, err := n.mod.Connect(core.PortRef{Translator: "h1/x/ghost", Port: "out"}, portRef(dst, "in")); !errors.Is(err, directory.ErrNotFound) {
		t.Errorf("ghost src err = %v", err)
	}
	// Unknown source port.
	if _, err := n.mod.Connect(portRef(src, "ghost"), portRef(dst, "in")); !errors.Is(err, core.ErrNoSuchPort) {
		t.Errorf("ghost port err = %v", err)
	}
	// Source must be an output.
	if _, err := n.mod.Connect(portRef(dst, "in"), portRef(dst, "in")); err == nil || !strings.Contains(err.Error(), "not a digital output") {
		t.Errorf("input-as-src err = %v", err)
	}
	// Destination must be an input.
	if _, err := n.mod.Connect(portRef(src, "out"), portRef(src, "out")); err == nil || !strings.Contains(err.Error(), "not a digital input") {
		t.Errorf("output-as-dst err = %v", err)
	}
	// Unknown destination port.
	if _, err := n.mod.Connect(portRef(src, "out"), portRef(dst, "ghost")); !errors.Is(err, core.ErrNoSuchPort) {
		t.Errorf("ghost dst port err = %v", err)
	}
}

func TestFanOutTwoPaths(t *testing.T) {
	n := newNode(t, nil, "h1")
	src := producer("h1", "camera", "image/jpeg")
	a := newCollector("h1", "tv-a", "image/jpeg")
	b := newCollector("h1", "tv-b", "image/jpeg")
	n.register(t, src)
	n.register(t, a)
	n.register(t, b)

	if _, err := n.mod.Connect(portRef(src, "out"), portRef(a, "in")); err != nil {
		t.Fatalf("Connect a: %v", err)
	}
	if _, err := n.mod.Connect(portRef(src, "out"), portRef(b, "in")); err != nil {
		t.Fatalf("Connect b: %v", err)
	}
	src.Emit("out", core.NewMessage("image/jpeg", []byte("x")))
	a.wait(t, 2*time.Second)
	b.wait(t, 2*time.Second)
}

func TestDisconnectStopsDelivery(t *testing.T) {
	n := newNode(t, nil, "h1")
	src := producer("h1", "camera", "image/jpeg")
	dst := newCollector("h1", "tv", "image/jpeg")
	n.register(t, src)
	n.register(t, dst)

	id, err := n.mod.Connect(portRef(src, "out"), portRef(dst, "in"))
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src.Emit("out", core.NewMessage("image/jpeg", []byte("1")))
	dst.wait(t, 2*time.Second)

	if err := n.mod.Disconnect(id); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	src.Emit("out", core.NewMessage("image/jpeg", []byte("2")))
	time.Sleep(50 * time.Millisecond)
	if dst.count() != 1 {
		t.Fatalf("messages after disconnect = %d, want 1", dst.count())
	}
	if err := n.mod.Disconnect(id); !errors.Is(err, ErrPathNotFound) {
		t.Fatalf("double disconnect err = %v", err)
	}
}

func TestDynamicBindingAdaptsToPresence(t *testing.T) {
	n := newNode(t, nil, "h1")
	src := producer("h1", "camera", "image/jpeg")
	n.register(t, src)

	// Connect to a template before any matching device exists.
	q := core.QueryAccepting("image/jpeg", "")
	id, err := n.mod.ConnectQuery(portRef(src, "out"), q)
	if err != nil {
		t.Fatalf("ConnectQuery: %v", err)
	}
	stats, _ := n.mod.PathStats(id)
	if stats.Bound != 0 {
		t.Fatalf("bound = %d before device appears", stats.Bound)
	}

	// An emission with no binding either drains with zero destinations
	// or, if still buffered when a binding appears, is delivered late —
	// both are valid store-and-forward outcomes.
	src.Emit("out", core.NewMessage("image/jpeg", []byte("early")))

	// Device appears: binding happens without reconnecting.
	tv := newCollector("h1", "tv", "image/jpeg")
	n.register(t, tv)
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats, _ = n.mod.PathStats(id)
		if stats.Bound == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dynamic path never bound")
		}
		time.Sleep(5 * time.Millisecond)
	}

	src.Emit("out", core.NewMessage("image/jpeg", []byte("late")))
	got := tv.wait(t, 2*time.Second)
	if string(got.Payload) == "early" {
		got = tv.wait(t, 2*time.Second) // buffered pre-binding message arrived first
	}
	if string(got.Payload) != "late" {
		t.Fatalf("payload = %q", got.Payload)
	}

	// Device disappears: path unbinds.
	n.dir.RemoveLocal(tv.Profile().ID)
	deadline = time.Now().Add(2 * time.Second)
	for {
		stats, _ = n.mod.PathStats(id)
		if stats.Bound == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dynamic path never unbound")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDynamicBindingExcludesSource(t *testing.T) {
	n := newNode(t, nil, "h1")
	// A translator that both produces and accepts jpeg: must not bind to
	// itself.
	loop := core.MustBase(core.Profile{
		ID:       core.MakeTranslatorID("h1", "umiddle", "loop"),
		Name:     "loop",
		Platform: "umiddle",
		Node:     "h1",
		Shape: core.MustShape(
			core.Port{Name: "out", Kind: core.Digital, Direction: core.Output, Type: "image/jpeg"},
			core.Port{Name: "in", Kind: core.Digital, Direction: core.Input, Type: "image/jpeg"},
		),
	})
	n.register(t, loop)
	id, err := n.mod.ConnectQuery(portRef(loop, "out"), core.QueryAccepting("image/jpeg", ""))
	if err != nil {
		t.Fatalf("ConnectQuery: %v", err)
	}
	stats, _ := n.mod.PathStats(id)
	if stats.Bound != 0 {
		t.Fatal("dynamic path bound to its own source translator")
	}
}

func TestCrossNodePath(t *testing.T) {
	// The paper's Figure 5 scenario: camera translator on H1, TV
	// translator on H2, message path across the transport modules.
	net := netemu.NewNetwork(netemu.Ethernet10Mbps())
	defer net.Close()
	h1 := newNode(t, net, "h1")
	h2 := newNode(t, net, "h2")

	camera := producer("h1", "bip-camera", "image/jpeg")
	tv := newCollector("h2", "upnp-tv", "image/jpeg")
	h1.register(t, camera)
	h2.register(t, tv)

	// Wait until h1 sees the TV through the directory.
	deadline := time.Now().Add(3 * time.Second)
	for len(h1.dir.Lookup(core.Query{NameContains: "upnp-tv"})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("h1 never learned about the TV")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, err := h1.mod.Connect(portRef(camera, "out"), portRef(tv, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	camera.Emit("out", core.NewMessage("image/jpeg", []byte("cross-node-frame")))
	got := tv.wait(t, 3*time.Second)
	if string(got.Payload) != "cross-node-frame" {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestRemoteConnectForwarding(t *testing.T) {
	// Issue Connect from h2 for a source hosted on h1: the request is
	// forwarded to h1, which installs and owns the path.
	net := netemu.NewNetwork(netemu.Ethernet10Mbps())
	defer net.Close()
	h1 := newNode(t, net, "h1")
	h2 := newNode(t, net, "h2")

	camera := producer("h1", "camera", "image/jpeg")
	tv := newCollector("h2", "tv", "image/jpeg")
	h1.register(t, camera)
	h2.register(t, tv)

	deadline := time.Now().Add(3 * time.Second)
	for len(h2.dir.Lookup(core.Query{NameContains: "camera"})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("h2 never learned about the camera")
		}
		time.Sleep(10 * time.Millisecond)
	}

	id, err := h2.mod.Connect(portRef(camera, "out"), portRef(tv, "in"))
	if err != nil {
		t.Fatalf("remote Connect: %v", err)
	}
	if id.node() != "h1" {
		t.Fatalf("path owner = %q, want h1", id.node())
	}
	camera.Emit("out", core.NewMessage("image/jpeg", []byte("fwd")))
	tv.wait(t, 3*time.Second)

	// Remote disconnect from h2 as well.
	if err := h2.mod.Disconnect(id); err != nil {
		t.Fatalf("remote Disconnect: %v", err)
	}
	if _, ok := h1.mod.PathStats(id); ok {
		t.Fatal("path still present on h1 after remote disconnect")
	}
}

func TestQoSDropOldestUnderBackpressure(t *testing.T) {
	n := newNode(t, nil, "h1")
	src := producer("h1", "sensor", "text/plain")
	n.register(t, src)

	// A slow consumer: each delivery takes 20ms.
	slow := core.MustBase(core.Profile{
		ID:       core.MakeTranslatorID("h1", "umiddle", "slow"),
		Name:     "slow",
		Platform: "umiddle",
		Node:     "h1",
		Shape: core.MustShape(
			core.Port{Name: "in", Kind: core.Digital, Direction: core.Input, Type: "text/plain"},
		),
	})
	var delivered int
	var mu sync.Mutex
	slow.MustHandle("in", func(_ context.Context, _ core.Message) error {
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		delivered++
		mu.Unlock()
		return nil
	})
	n.register(t, slow)

	id, err := n.mod.ConnectClass(portRef(src, "out"), portRef(slow, "in"),
		qos.Class{BufferCapacity: 2, Policy: qos.DropOldest})
	if err != nil {
		t.Fatalf("ConnectClass: %v", err)
	}
	for i := 0; i < 20; i++ {
		src.Emit("out", core.TextMessage("x"))
	}
	time.Sleep(200 * time.Millisecond)
	stats, _ := n.mod.PathStats(id)
	if stats.Buffer.Dropped == 0 {
		t.Fatalf("expected drops under backpressure, stats = %+v", stats)
	}
	mu.Lock()
	defer mu.Unlock()
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if delivered == 20 {
		t.Fatal("all 20 delivered despite 2-deep drop-oldest buffer and slow consumer")
	}
}

func TestQoSRateLimitPaces(t *testing.T) {
	n := newNode(t, nil, "h1")
	src := producer("h1", "src", "text/plain")
	dst := newCollector("h1", "dst", "text/plain")
	n.register(t, src)
	n.register(t, dst)

	_, err := n.mod.ConnectClass(portRef(src, "out"), portRef(dst, "in"),
		qos.Class{RateMessagesPerSec: 100, BufferCapacity: 64})
	if err != nil {
		t.Fatalf("ConnectClass: %v", err)
	}
	start := time.Now()
	const count = 10
	for i := 0; i < count; i++ {
		src.Emit("out", core.TextMessage("x"))
	}
	for i := 0; i < count; i++ {
		dst.wait(t, 2*time.Second)
	}
	// 10 messages at 100/s with burst 100... burst covers them; use the
	// observation that they all arrived.
	_ = start
	if dst.count() != count {
		t.Fatalf("delivered = %d", dst.count())
	}
}

func TestPathsListing(t *testing.T) {
	n := newNode(t, nil, "h1")
	src := producer("h1", "src", "text/plain")
	dst := newCollector("h1", "dst", "text/plain")
	n.register(t, src)
	n.register(t, dst)
	if _, err := n.mod.Connect(portRef(src, "out"), portRef(dst, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if _, err := n.mod.ConnectQuery(portRef(src, "out"), core.Query{Platform: "umiddle"}); err != nil {
		t.Fatalf("ConnectQuery: %v", err)
	}
	infos := n.mod.Paths()
	if len(infos) != 2 {
		t.Fatalf("paths = %d, want 2", len(infos))
	}
	var static, dynamic int
	for _, info := range infos {
		if info.Dst != nil {
			static++
		}
		if info.Query != nil {
			dynamic++
		}
	}
	if static != 1 || dynamic != 1 {
		t.Fatalf("static = %d, dynamic = %d", static, dynamic)
	}
}

func TestModuleClosedErrors(t *testing.T) {
	n := newNode(t, nil, "h1")
	src := producer("h1", "src", "text/plain")
	dst := newCollector("h1", "dst", "text/plain")
	n.register(t, src)
	n.register(t, dst)
	n.mod.Close()
	if _, err := n.mod.Connect(portRef(src, "out"), portRef(dst, "in")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Connect after close err = %v", err)
	}
	// Emit after close must not panic.
	n.mod.Emit(portRef(src, "out"), core.TextMessage("x"))
}

func TestMessageOrderingPreserved(t *testing.T) {
	// Sequence numbers are assigned per path and deliveries preserve
	// emission order end to end.
	n := newNode(t, nil, "h1")
	src := producer("h1", "src", "text/plain")
	dst := newCollector("h1", "dst", "text/plain")
	n.register(t, src)
	n.register(t, dst)
	if _, err := n.mod.Connect(portRef(src, "out"), portRef(dst, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	const count = 50
	for i := 0; i < count; i++ {
		src.Emit("out", core.TextMessage(fmt.Sprintf("%d", i)))
	}
	for i := 0; i < count; i++ {
		msg := dst.wait(t, 5*time.Second)
		if string(msg.Payload) != fmt.Sprintf("%d", i) {
			t.Fatalf("message %d out of order: %q", i, msg.Payload)
		}
		if msg.Seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", msg.Seq, i+1)
		}
	}
}

func TestDirectoryExpiryUnbindsDynamicPath(t *testing.T) {
	// When a node crashes (no bye), the directory expires its
	// translators and dynamic paths drop the stale bindings.
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	h1 := newNode(t, net, "h1")
	h2 := newNode(t, net, "h2")
	src := producer("h1", "src", "text/plain")
	dst := newCollector("h2", "dst", "text/plain")
	h1.register(t, src)
	h2.register(t, dst)
	deadline := time.Now().Add(3 * time.Second)
	for len(h1.dir.Lookup(core.Query{NameContains: "dst"})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("h1 never saw dst")
		}
		time.Sleep(10 * time.Millisecond)
	}
	id, err := h1.mod.ConnectQuery(portRef(src, "out"), core.Query{NameContains: "dst"})
	if err != nil {
		t.Fatalf("ConnectQuery: %v", err)
	}
	stats, _ := h1.mod.PathStats(id)
	if stats.Bound != 1 {
		t.Fatalf("bound = %d", stats.Bound)
	}
	// Crash h2's side of the network: announcements stop, the directory
	// expires the translator, the path unbinds.
	net.SetLinkDown("h1", "h2", true)
	deadline = time.Now().Add(5 * time.Second)
	for {
		stats, _ := h1.mod.PathStats(id)
		if stats.Bound == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale binding survived node crash: %+v", stats)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSlowDestinationDoesNotBlockOthers(t *testing.T) {
	// The per-destination dispatcher must keep one stalled translator
	// from holding up deliveries to other destinations arriving on the
	// same connection. A single per-connection delivery queue would
	// serialize the fast destination behind the stalled one once the
	// stalled destination's QoS buffer fills.
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	h1 := newNode(t, net, "h1")
	h2 := newNode(t, net, "h2")

	srcStall := producer("h1", "src-stall", "text/plain")
	srcFast := producer("h1", "src-fast", "text/plain")
	release := make(chan struct{})
	stalled := core.MustBase(core.Profile{
		ID:       core.MakeTranslatorID("h2", "umiddle", "stalled"),
		Name:     "stalled",
		Platform: "umiddle",
		Node:     "h2",
		Shape: core.MustShape(
			core.Port{Name: "in", Kind: core.Digital, Direction: core.Input, Type: "text/plain"},
		),
	})
	stalled.MustHandle("in", func(ctx context.Context, _ core.Message) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	fast := newCollector("h2", "fast", "text/plain")
	h1.register(t, srcStall)
	h1.register(t, srcFast)
	h2.register(t, stalled)
	h2.register(t, fast)

	deadline := time.Now().Add(3 * time.Second)
	for len(h1.dir.Lookup(core.Query{NameContains: "stalled"})) == 0 ||
		len(h1.dir.Lookup(core.Query{NameContains: "fast"})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("h1 never saw h2's translators")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := h1.mod.Connect(portRef(srcStall, "out"), portRef(stalled, "in")); err != nil {
		t.Fatalf("Connect stall: %v", err)
	}
	if _, err := h1.mod.Connect(portRef(srcFast, "out"), portRef(fast, "in")); err != nil {
		t.Fatalf("Connect fast: %v", err)
	}

	// Flood the stalled destination past its QoS buffer capacity so its
	// dispatcher worker blocks mid-delivery.
	for i := 0; i < 2*qos.DefaultClass().BufferCapacity+16; i++ {
		srcStall.Emit("out", core.NewMessage("text/plain", []byte("stall")))
	}
	const fastMsgs = 20
	for i := 0; i < fastMsgs; i++ {
		srcFast.Emit("out", core.NewMessage("text/plain", []byte("fast")))
	}

	// The fast destination must drain well before the stalled
	// destination's DeliverTimeout could free anything up.
	deadline = time.Now().Add(time.Second)
	for fast.count() < fastMsgs {
		if time.Now().After(deadline) {
			t.Fatalf("fast destination starved behind stalled one: got %d/%d", fast.count(), fastMsgs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
}
