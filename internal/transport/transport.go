// Package transport implements uMiddle's transport module: it "serves to
// allow communication among translators situated in different nodes"
// (paper Section 3.2) and provides the dynamic device binding mechanism
// of Section 3.5 — connections between translators established either by
// specific port instance or by a template shape evaluated adaptively as
// translators appear and disappear (paper Figure 7 APIs).
//
// Every message path owns a translation buffer with a QoS class (bounded
// capacity, overflow policy, optional rate limits) — the QoS control the
// paper's Section 5.3 calls for.
package transport

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/netemu"
	"repro/internal/obs"
	"repro/internal/qos"
)

// DefaultPort is the inter-node transport port.
const DefaultPort = 7788

// Errors returned by the transport module.
var (
	// ErrPathNotFound is returned when disconnecting an unknown path.
	ErrPathNotFound = errors.New("transport: path not found")
	// ErrIncompatible is returned when connecting ports whose data types
	// cannot interoperate.
	ErrIncompatible = errors.New("transport: incompatible port types")
	// ErrClosed is returned when using a closed module.
	ErrClosed = errors.New("transport: closed")
	// ErrDestinationLost is returned when a static path's destination
	// translator has been unmapped (device removed or its node down):
	// deliveries fail with this typed error instead of draining the retry
	// budget into network attempts against a corpse.
	ErrDestinationLost = errors.New("transport: destination lost")
)

// PathState names a path's binding state — the state machine DESIGN.md §9
// documents: searching → bound → failing-over → degraded.
type PathState string

// Path binding states.
const (
	// PathSearching: a dynamic path with no binding yet (no compatible
	// candidate has appeared).
	PathSearching PathState = "searching"
	// PathBound: at least one live destination (static paths whose
	// destination is mapped are always bound).
	PathBound PathState = "bound"
	// PathFailingOver: a dynamic path that lost its bound destinations
	// and is re-running its query for a replacement.
	PathFailingOver PathState = "failing-over"
	// PathDegraded: a static path whose destination is unmapped, or a
	// dynamic path that dropped a message because no candidate appeared
	// within the retry budget. Cleared when the destination (or any
	// compatible candidate) is mapped again.
	PathDegraded PathState = "degraded"
)

// PathID identifies a message path; the prefix before '#' names the node
// hosting the path (always the node of the source translator).
type PathID string

// node returns the hosting node of the path.
func (id PathID) node() string {
	if i := strings.IndexByte(string(id), '#'); i >= 0 {
		return string(id)[:i]
	}
	return ""
}

// PathStats reports per-path activity. The values are a point-in-time
// view over the module's obs registry: the same numbers appear as
// umiddle_transport_path_*_total series on /metrics.
type PathStats struct {
	// Delivered counts messages successfully delivered to all current
	// destinations.
	Delivered uint64
	// Bytes counts payload bytes delivered.
	Bytes uint64
	// Errors counts deliveries that failed after exhausting retries.
	Errors uint64
	// Retries counts delivery attempts beyond the first (each retried
	// message contributes one per extra attempt).
	Retries uint64
	// Redials counts peer connections re-established while delivering
	// on this path — a dropped link that recovered.
	Redials uint64
	// Dropped counts messages abandoned for a destination after the
	// retry budget was exhausted.
	Dropped uint64
	// Failovers counts bound destinations lost (unmapped, node down, or
	// retry-exhausted) that triggered a query re-run on this path.
	Failovers uint64
	// Buffer reports translation-buffer statistics.
	Buffer qos.BufferStats
	// Bound is the number of currently bound destinations.
	Bound int
}

// PathInfo describes a path for inspection (Pads renders these).
type PathInfo struct {
	ID    PathID
	Src   core.PortRef
	Dst   *core.PortRef // static destination, nil for dynamic paths
	Query *core.Query   // dynamic template, nil for static paths
	Bound []core.PortRef
	Class qos.Class
	State PathState
	Stats PathStats
}

// pathMetrics holds one path's registry series, resolved once at path
// creation so the delivery hot path never takes the registry lock.
type pathMetrics struct {
	delivered *obs.Counter
	bytes     *obs.Counter
	errors    *obs.Counter
	retries   *obs.Counter
	redials   *obs.Counter
	dropped   *obs.Counter
	failovers *obs.Counter
	latency   *obs.Histogram
}

// path is one message path hosted by this node.
type path struct {
	id      PathID
	src     core.PortRef
	srcType core.DataType
	static  *core.PortRef
	query   *core.Query
	class   qos.Class
	buf     *qos.Buffer[core.Message]
	bytesRL *qos.RateLimiter
	msgRL   *qos.RateLimiter
	met     pathMetrics
	// stripe pins this path's outbound frames to one striped write
	// connection per destination node (round-robin assigned at path
	// creation), sharding the group-commit leader across paths while
	// keeping any one path's frames on a single ordered stream.
	stripe uint64
	// skNode/skKey cache the last stripeKey built for this path's
	// destination node: the key concatenates strings, and without the
	// cache that is a per-message allocation on every striped path.
	// fcCache additionally pins the established connection, so the
	// steady state skips the module-mutex peer lookup (and the redial
	// bookkeeping) per message; a failed write invalidates the cache and
	// the next attempt does the full lookup. Touched only by the path's
	// worker goroutine (deliver runs there).
	skNode  string
	skKey   string
	fcCache *frameConn
	// interestCancel withdraws the directory interest this path
	// registered (its query, or its static destination); nil when the
	// path registered none.
	interestCancel func()

	mu      sync.Mutex
	bound   map[core.TranslatorID]core.PortRef
	dstSnap []core.PortRef // cached destinations() snapshot; nil = rebuild
	seq     uint64
	peerGen map[string]uint64 // last peer-connection generation seen per node
	// lostAt stamps when a dynamic path lost its last bound destination;
	// zero while bound (or never bound). The failover latency histogram
	// observes lostAt → first rebind.
	lostAt time.Time
	// degraded marks a static path whose destination is unmapped, or a
	// dynamic path that dropped a message with no candidate in sight.
	degraded bool
}

// state derives the binding state from the path's current fields.
func (p *path) state() PathState {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.static != nil {
		if p.degraded {
			return PathDegraded
		}
		return PathBound
	}
	switch {
	case len(p.bound) > 0:
		return PathBound
	case p.degraded:
		return PathDegraded
	case !p.lostAt.IsZero():
		return PathFailingOver
	default:
		return PathSearching
	}
}

// failingOver reports whether a dynamic path has lost destinations it
// once had (as opposed to never having bound any).
func (p *path) failingOver() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.query != nil && (!p.lostAt.IsZero() || p.degraded)
}

// notePeerGen records the connection generation used to reach a node; a
// generation bump means the connection was re-established since this
// path last delivered there.
func (p *path) notePeerGen(node string, gen uint64) {
	p.mu.Lock()
	var bumps uint64
	if prev, ok := p.peerGen[node]; ok && gen > prev {
		bumps = gen - prev
	}
	p.peerGen[node] = gen
	p.mu.Unlock()
	if bumps > 0 {
		p.met.redials.Add(bumps)
	}
}

// destinations returns the path's current destination set as a shared
// immutable snapshot: rebuilt only when the bound set changes (tryBind,
// failDestination invalidate it), not per call — the path worker calls
// this once per message. Callers must not mutate the returned slice.
func (p *path) destinations() []core.PortRef {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dstSnap == nil {
		if p.static != nil {
			p.dstSnap = []core.PortRef{*p.static}
		} else {
			out := make([]core.PortRef, 0, len(p.bound))
			for _, ref := range p.bound {
				out = append(out, ref)
			}
			p.dstSnap = out
		}
	}
	return p.dstSnap
}

// Options configures a Module.
type Options struct {
	// Port overrides DefaultPort.
	Port int
	// DeliverTimeout bounds one delivery attempt (default 10s).
	DeliverTimeout time.Duration
	// DialTimeout bounds one peer connection attempt, and how long a
	// delivery waits for an in-progress redial cycle (default 5s).
	DialTimeout time.Duration
	// Retry bounds per-message delivery retries: a failed delivery is
	// reattempted with exponential backoff until the policy is
	// exhausted, then the message is dropped for that destination and
	// counted in PathStats.Dropped.
	Retry qos.RetryPolicy
	// Redial bounds one peer reconnection cycle: after a connection
	// drops, the module redials with exponential backoff and jitter.
	// When a cycle exhausts, waiting deliveries fail (and consume one
	// Retry attempt); a later delivery starts a fresh cycle.
	Redial qos.RetryPolicy
	// DeliverWorkers bounds the concurrent inbound delivery workers
	// (default 8). Inbound deliveries are queued per destination port:
	// one worker drains one destination at a time, preserving
	// per-destination ordering while independent destinations proceed
	// in parallel instead of serializing behind one per-connection
	// queue.
	DeliverWorkers int
	// RelayTTL bounds the hops a deliver frame may be forwarded through
	// when the destination shares no link and the directory supplies a
	// relay route (default 8).
	RelayTTL int
	// DeliverOwnership selects how inbound payload buffers are handed
	// to local translators. The default, OwnershipTracked, delivers
	// zero-copy and verifies after the fact that no translator mutated
	// a payload it had already returned (see Ownership). Translators
	// must finish with msg.Payload before Deliver returns; retaining a
	// payload requires copying it first (core.Message.Clone).
	DeliverOwnership Ownership
	// ZeroCopyDeliver is the deprecated spelling of
	// OwnershipAliased: zero-copy delivery with no mutation tracking.
	// Ignored when DeliverOwnership is set explicitly.
	ZeroCopyDeliver bool
	// WriteShards sets how many striped connections this module opens
	// toward each peer node (default: GOMAXPROCS, capped at 16). Each
	// outbound path is pinned to one stripe, so per-path frame order is
	// preserved while the group-commit leader — a single convoy point
	// per connection — is sharded across stripes and cores. Stripe 0
	// doubles as the control-frame connection.
	WriteShards int
	// DisablePathMetrics makes every path share one aggregate set of
	// registry series instead of resolving eight per-path series. At
	// load-harness scale (100k+ concurrent paths) per-path cardinality
	// would swamp the registry; with this set, PathStats reports
	// module-wide aggregates rather than per-path numbers.
	DisablePathMetrics bool
	// Logger receives diagnostics; nil disables logging.
	Logger *slog.Logger
	// Obs receives metrics and trace events. When nil the module keeps a
	// private registry so PathStats always has live counters behind it.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Port <= 0 {
		o.Port = DefaultPort
	}
	if o.DeliverTimeout <= 0 {
		o.DeliverTimeout = 10 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.DeliverWorkers <= 0 {
		o.DeliverWorkers = 8
	}
	if o.RelayTTL <= 0 {
		o.RelayTTL = 8
	}
	if o.DeliverOwnership == OwnershipTracked && o.ZeroCopyDeliver {
		o.DeliverOwnership = OwnershipAliased
	}
	if o.WriteShards <= 0 {
		o.WriteShards = runtime.GOMAXPROCS(0)
	}
	if o.WriteShards > 16 {
		o.WriteShards = 16
	}
	o.Retry = o.Retry.WithDefaults()
	o.Redial = o.Redial.WithDefaults()
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.Obs == nil {
		o.Obs = obs.NewRegistry()
	}
	return o
}

// peer is the connection state for one remote node. The connection is
// re-established by a background redial cycle with exponential backoff;
// deliveries wait for the cycle in progress (up to DialTimeout) instead
// of failing outright the moment a link drops.
type peer struct {
	node string

	mu      sync.Mutex
	fc      *frameConn    // current connection; nil while down
	gen     uint64        // count of successful (re)connections
	ready   chan struct{} // closed when the current dial cycle resolves
	dialing bool          // a redial cycle is in progress
	lastErr error         // why the last cycle gave up
}

// closedChan is a pre-closed channel for peers in a resolved state.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Module is the transport module of one uMiddle runtime. It implements
// core.Sink: the runtime binds every local translator's emissions to it.
type Module struct {
	node string
	host *netemu.Host
	dir  *directory.Directory
	opts Options

	// Module-wide metric handles (per-path handles live on each path).
	latency     *obs.Histogram // aggregate delivery latency across paths
	queueDepth  *obs.Gauge     // inbound deliveries dispatched, not yet handled
	failovers   *obs.Counter   // destinations lost across all dynamic paths
	failoverLat *obs.Histogram // destination lost → path rebound latency
	trace       *obs.Trace
	codecMet    *connMetrics // pool hit rate + write batch sizes

	// Relay metric handles and state (multi-hop forwarding, relay.go).
	relayed        *obs.Counter
	relayedBytes   *obs.Counter
	relayDupDrop   *obs.Counter
	relayTTLDrop   *obs.Counter
	relayRouteFail *obs.Counter
	relayID        atomic.Uint64 // per-origin frame ids for relay dedup

	// dispatch fans inbound deliveries out per destination port.
	dispatch *dispatcher
	// matchCache memoizes Query.Matches for dynamic-path rebinding.
	matchCache *core.MatchCache
	// quar is the tracked-ownership quarantine ring (nil unless
	// DeliverOwnership is OwnershipTracked).
	quar       *quarantine
	violations *obs.Counter
	// sharedPathMet is the single aggregate metric set every path uses
	// when DisablePathMetrics is set; nil otherwise.
	sharedPathMet *pathMetrics

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	listener *netemu.Listener
	peers    map[string]*peer
	conns    map[*frameConn]struct{} // every connection with a live read loop
	paths    map[PathID]*path
	bySrc    map[core.PortRef][]*path
	pending  map[uint64]chan frame
	// policies holds the live retry/redial policies. They start as
	// Options.Retry/Redial and can be replaced atomically at runtime
	// (SetRetryPolicies, the hot-reload path) without touching any bound
	// path: delivery and redial loops load the pointer per cycle.
	policies atomic.Pointer[retryPolicies]
	// relaySeen holds one duplicate-suppression window per origin whose
	// frames we forward (guarded by mu like the other maps).
	relaySeen map[string]*relayWindow
	nextPath  uint64
	nextReq   uint64
	started   bool
	closed    bool
	wg        sync.WaitGroup
}

var _ core.Sink = (*Module)(nil)

// retryPolicies bundles the two backoff policies so a hot reload swaps
// both in one atomic pointer store.
type retryPolicies struct {
	Retry  qos.RetryPolicy
	Redial qos.RetryPolicy
}

// RetryPolicies returns the policies currently in force.
func (m *Module) RetryPolicies() (retry, redial qos.RetryPolicy) {
	p := m.policies.Load()
	return p.Retry, p.Redial
}

// SetRetryPolicies replaces the delivery-retry and peer-redial policies
// at runtime. In-flight retry and redial cycles finish under the policy
// they started with; the next cycle picks up the new one. Bound paths,
// connections, and queued messages are untouched — this is the
// hot-reload contract: tuning backoff must never drop a path.
func (m *Module) SetRetryPolicies(retry, redial qos.RetryPolicy) {
	m.policies.Store(&retryPolicies{
		Retry:  retry.WithDefaults(),
		Redial: redial.WithDefaults(),
	})
	m.trace.Event("retry_policies_updated", m.node, "")
}

// New creates a transport module. host may be nil for a standalone
// single-node module (local paths only).
func New(node string, host *netemu.Host, dir *directory.Directory, opts Options) *Module {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Module{
		node:      node,
		host:      host,
		dir:       dir,
		opts:      opts.withDefaults(),
		ctx:       ctx,
		cancel:    cancel,
		peers:     make(map[string]*peer),
		conns:     make(map[*frameConn]struct{}),
		paths:     make(map[PathID]*path),
		bySrc:     make(map[core.PortRef][]*path),
		pending:   make(map[uint64]chan frame),
		relaySeen: make(map[string]*relayWindow),
	}
	// Seed relay ids from the clock so a restarted node's ids land above
	// anything its previous incarnation left in peer dedup windows.
	m.relayID.Store(uint64(time.Now().UnixNano()))
	m.policies.Store(&retryPolicies{Retry: m.opts.Retry, Redial: m.opts.Redial})
	reg := m.opts.Obs
	reg.Describe("umiddle_transport_delivery_latency_seconds", "End-to-end delivery latency per message destination.")
	reg.Describe("umiddle_transport_delivery_queue_depth", "Inbound deliveries dispatched off read loops but not yet handed to a translator.")
	reg.Describe("umiddle_transport_path_delivered_total", "Messages successfully delivered per path.")
	reg.Describe("umiddle_transport_path_bytes_total", "Payload bytes delivered per path.")
	reg.Describe("umiddle_transport_path_errors_total", "Deliveries failed after exhausting retries per path.")
	reg.Describe("umiddle_transport_path_retries_total", "Delivery attempts beyond the first per path.")
	reg.Describe("umiddle_transport_path_redials_total", "Peer connections re-established while delivering per path.")
	reg.Describe("umiddle_transport_path_dropped_total", "Messages abandoned after the retry budget per path.")
	reg.Describe("umiddle_transport_path_failovers_total", "Bound destinations lost that triggered a query re-run per path.")
	reg.Describe("umiddle_transport_failovers_total", "Bound destinations lost across all dynamic paths.")
	reg.Describe("umiddle_transport_failover_latency_seconds", "Destination lost to path rebound latency.")
	reg.Describe("umiddle_transport_frame_pool_gets_total", "Pooled frame-buffer requests (hit rate = 1 - misses/gets).")
	reg.Describe("umiddle_transport_frame_pool_misses_total", "Pooled frame-buffer requests that fell through to a fresh allocation.")
	reg.Describe("umiddle_transport_write_batch_frames", "Deliver frames coalesced into each connection write.")
	reg.Describe("umiddle_transport_match_cache_hits_total", "Dynamic-binding query matches served from the memoization cache.")
	reg.Describe("umiddle_transport_match_cache_misses_total", "Dynamic-binding query matches that had to be evaluated.")
	reg.Describe("umiddle_transport_frames_relayed_total", "Deliver frames forwarded toward their next hop on behalf of other nodes.")
	reg.Describe("umiddle_transport_relay_bytes_total", "Payload bytes of forwarded deliver frames.")
	reg.Describe("umiddle_transport_relay_dup_dropped_total", "Relayed deliver frames dropped as duplicates of an already-forwarded (origin, id).")
	reg.Describe("umiddle_transport_relay_ttl_dropped_total", "Relayed deliver frames dropped with an exhausted hop budget.")
	reg.Describe("umiddle_transport_relay_route_failed_total", "Relayed deliver frames dropped because the next hop was unreachable.")
	reg.Describe("umiddle_transport_ownership_violations_total", "Delivered payload buffers found mutated after Deliver returned (tracked zero-copy contract violations).")
	// Resolved eagerly so /metrics shows the latency family (and the
	// queue-depth gauge) even before the first message flows.
	labels := obs.Labels{"node": node}
	m.latency = reg.Histogram("umiddle_transport_delivery_latency_seconds", labels, nil)
	m.queueDepth = reg.Gauge("umiddle_transport_delivery_queue_depth", labels)
	m.failovers = reg.Counter("umiddle_transport_failovers_total", labels)
	m.failoverLat = reg.Histogram("umiddle_transport_failover_latency_seconds", labels, nil)
	m.trace = reg.Trace()
	m.relayed = reg.Counter("umiddle_transport_frames_relayed_total", labels)
	m.relayedBytes = reg.Counter("umiddle_transport_relay_bytes_total", labels)
	m.relayDupDrop = reg.Counter("umiddle_transport_relay_dup_dropped_total", labels)
	m.relayTTLDrop = reg.Counter("umiddle_transport_relay_ttl_dropped_total", labels)
	m.relayRouteFail = reg.Counter("umiddle_transport_relay_route_failed_total", labels)
	m.codecMet = &connMetrics{
		poolGets:   reg.Counter("umiddle_transport_frame_pool_gets_total", labels),
		poolMisses: reg.Counter("umiddle_transport_frame_pool_misses_total", labels),
		batchFrames: reg.Histogram("umiddle_transport_write_batch_frames", labels,
			[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}),
	}
	m.violations = reg.Counter("umiddle_transport_ownership_violations_total", labels)
	if m.opts.DeliverOwnership == OwnershipTracked {
		m.quar = newQuarantine(node, m.violations, m.trace)
	}
	if m.opts.DisablePathMetrics {
		met := m.newPathMetricsFor(PathID("_aggregate"))
		m.sharedPathMet = &met
	}
	m.dispatch = newDispatcher(m, m.opts.DeliverWorkers)
	m.matchCache = core.NewMatchCache(0)
	cacheHits := reg.Counter("umiddle_transport_match_cache_hits_total", labels)
	cacheMisses := reg.Counter("umiddle_transport_match_cache_misses_total", labels)
	m.matchCache.Hook = func(hit bool) {
		if hit {
			cacheHits.Inc()
		} else {
			cacheMisses.Inc()
		}
	}
	return m
}

// Node returns the owning runtime's node name.
func (m *Module) Node() string { return m.node }

// Obs returns the module's metrics registry (the one from Options.Obs,
// or the private registry created when none was supplied).
func (m *Module) Obs() *obs.Registry { return m.opts.Obs }

// Start begins accepting inter-node connections and watching the
// directory for dynamic-binding updates.
func (m *Module) Start() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.started {
		m.mu.Unlock()
		return nil
	}
	m.started = true
	m.mu.Unlock()

	m.dir.AddListener(dirListener{m})

	if m.host == nil {
		return nil
	}
	l, err := m.host.Listen(m.opts.Port)
	if err != nil {
		return fmt.Errorf("transport: listen: %w", err)
	}
	m.mu.Lock()
	m.listener = l
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.acceptLoop(l)
	}()
	return nil
}

// Close shuts the module down: paths, peers, listener.
func (m *Module) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	listener := m.listener
	peers := m.peers
	m.peers = make(map[string]*peer)
	conns := make([]*frameConn, 0, len(m.conns))
	for fc := range m.conns {
		conns = append(conns, fc)
	}
	m.conns = make(map[*frameConn]struct{})
	paths := m.paths
	m.paths = make(map[PathID]*path)
	m.bySrc = make(map[core.PortRef][]*path)
	m.mu.Unlock()

	m.cancel()
	if listener != nil {
		listener.Close()
	}
	for _, p := range peers {
		p.mu.Lock()
		fc := p.fc
		p.mu.Unlock()
		if fc != nil {
			fc.close()
		}
	}
	// Close every remaining connection — including accepted duplicates
	// that never became (or stopped being) a peer's current link — so
	// their read loops unblock and the WaitGroup can drain.
	for _, fc := range conns {
		fc.close()
	}
	for _, p := range paths {
		p.buf.Close()
	}
	m.dispatch.close()
	m.wg.Wait()
	if m.quar != nil {
		// Verify everything still quarantined so late mutations within
		// the final window are reported before the counters are read.
		m.quar.flush()
	}
	return nil
}

// OwnershipViolations reports how many delivered payloads were found
// mutated after their Deliver returned (OwnershipTracked mode).
func (m *Module) OwnershipViolations() uint64 { return m.violations.Value() }

func (m *Module) acceptLoop(l *netemu.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		fc := newFrameConn(conn)
		fc.setMetrics(m.codecMet)
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.readLoop(fc)
			// The connection may have been registered as a peer by a
			// hello frame; detach it so deliveries stop using it and a
			// redial cycle can replace it.
			m.forgetConn(fc)
		}()
	}
}

// deliverQueueDepth bounds per-connection deliveries dispatched off the
// read loop but not yet handed to their translator.
const deliverQueueDepth = 256

// readLoop processes inbound frames from one connection until error.
// Deliver frames are handed to the per-destination dispatcher so one
// slow Translator.Deliver can stall neither control frames — in
// particular the ack/error responses that request() waits on, which are
// handled inline here — nor deliveries bound for other destinations.
// A per-connection semaphore bounds this connection's outstanding
// deliveries, so a slow consumer backpressures its sender through the
// wire instead of ballooning dispatcher queues.
func (m *Module) readLoop(fc *frameConn) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		fc.close()
		return
	}
	m.conns[fc] = struct{}{}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.conns, fc)
		m.mu.Unlock()
		fc.close()
	}()

	sem := make(chan struct{}, deliverQueueDepth)
	for {
		f, err := fc.read()
		if err != nil {
			return
		}
		if f.header.Type == frameDeliver {
			select {
			case sem <- struct{}{}:
			case <-m.ctx.Done():
				f.release()
				return
			}
			m.queueDepth.Add(1)
			m.dispatch.enqueue(f, func() {
				m.queueDepth.Add(-1)
				<-sem
			})
			continue
		}
		m.handleFrame(fc, f)
	}
}

func (m *Module) handleFrame(fc *frameConn, f frame) {
	switch f.header.Type {
	case frameHello:
		m.registerPeer(f.header.From, fc)
	case frameConnect:
		id, err := m.installFromFrame(f)
		m.reply(fc, f, id, err)
	case frameDisconnect:
		err := m.removeLocalPath(f.header.PathID)
		m.reply(fc, f, f.header.PathID, err)
	case frameAck, frameError:
		m.mu.Lock()
		ch := m.pending[f.header.ID]
		delete(m.pending, f.header.ID)
		m.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	default:
		m.opts.Logger.Warn("transport: unknown frame", "type", f.header.Type)
	}
}

func (m *Module) reply(fc *frameConn, req frame, id PathID, err error) {
	h := frameHeader{From: m.node, ID: req.header.ID, PathID: id}
	if err != nil {
		h.Type = frameError
		h.Err = err.Error()
	} else {
		h.Type = frameAck
	}
	if werr := fc.write(frame{header: h}); werr != nil {
		m.opts.Logger.Warn("transport: reply failed", "err", werr)
	}
}

// registerPeer records an inbound connection as the peer link for a
// node (unless one is already established). A re-registration after a
// drop counts as a reconnection and triggers a prompt directory
// re-announce so the healed peer relearns our translators immediately.
func (m *Module) registerPeer(node string, fc *frameConn) {
	if node == "" {
		return
	}
	p := m.getOrCreatePeer(node, node)
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.fc != nil {
		p.mu.Unlock()
		return
	}
	p.fc = fc
	p.gen++
	gen := p.gen
	if p.dialing {
		// Resolve the in-flight dial cycle; its goroutine observes
		// p.fc != nil and exits without touching ready again.
		p.dialing = false
		close(p.ready)
	}
	p.mu.Unlock()
	if gen > 1 {
		m.opts.Logger.Info("transport: peer reconnected (inbound)", "node", node)
		m.trace.Event("redial", m.node, "peer "+node+" reconnected (inbound)")
		m.dir.AnnounceNow()
	}
}

// getOrCreatePeer returns the peer state stored under key, creating it
// if needed (node is the dial target — for write stripes the key and
// node differ). Returns nil when the module is closed.
func (m *Module) getOrCreatePeer(key, node string) *peer {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	p, ok := m.peers[key]
	if !ok {
		p = &peer{node: node, ready: closedChan}
		m.peers[key] = p
	}
	return p
}

// stripeSep joins node and stripe number into a peer-map key. NUL never
// appears in node names, so stripe keys cannot collide with them.
const stripeSep = "\x00w"

// stripeKey returns the peer-map key for one write stripe of a node.
// Stripe 0 is the node's primary (control) connection, keyed by name.
func stripeKey(node string, stripe int) string {
	if stripe == 0 {
		return node
	}
	return node + stripeSep + strconv.Itoa(stripe)
}

// peerForStripe is peerFor on one of the node's striped write
// connections. Each outbound path is pinned to a stripe, so the
// group-commit leader convoy of a single shared connection is sharded
// across WriteShards connections while frames of any one path stay
// ordered on one stream.
func (m *Module) peerForStripe(node string, stripe uint64) (*frameConn, uint64, string, error) {
	key := stripeKey(node, int(stripe%uint64(m.opts.WriteShards)))
	fc, gen, err := m.peerForKey(key, node)
	return fc, gen, key, err
}

// pathConn is peerForStripe through the path's one-entry connection
// cache (see path.skNode): steady-state deliveries reuse the cached
// established conn without touching the module mutex or the peer-gen
// map. Redial accounting still works because every generation change
// passes through a cache miss — the old conn's writes fail, deliver
// invalidates the cache, and the re-lookup here observes (and notes)
// the new generation. Call only from the path's worker goroutine.
func (m *Module) pathConn(p *path, node string) (*frameConn, string, error) {
	if p.skNode != node {
		p.skNode = node
		p.skKey = stripeKey(node, int(p.stripe%uint64(m.opts.WriteShards)))
		p.fcCache = nil
	}
	if p.fcCache != nil {
		return p.fcCache, p.skKey, nil
	}
	fc, gen, err := m.peerForKey(p.skKey, node)
	if err != nil {
		return nil, p.skKey, err
	}
	p.notePeerGen(p.skKey, gen)
	p.fcCache = fc
	return fc, p.skKey, nil
}

// peerFor returns an established primary connection to a node and its
// generation, starting a redial cycle and waiting for it (bounded by
// DialTimeout) when the peer is down.
func (m *Module) peerFor(node string) (*frameConn, uint64, error) {
	return m.peerForKey(node, node)
}

func (m *Module) peerForKey(key, node string) (*frameConn, uint64, error) {
	if m.host == nil {
		return nil, 0, fmt.Errorf("transport: no network; cannot reach node %q", node)
	}
	p := m.getOrCreatePeer(key, node)
	if p == nil {
		return nil, 0, ErrClosed
	}

	p.mu.Lock()
	if p.fc != nil {
		fc, gen := p.fc, p.gen
		p.mu.Unlock()
		return fc, gen, nil
	}
	if !p.dialing {
		if !m.trackWorker() {
			p.mu.Unlock()
			return nil, 0, ErrClosed
		}
		p.dialing = true
		p.ready = make(chan struct{})
		p.lastErr = nil
		go m.redialLoop(p, p.ready)
	}
	ready := p.ready
	p.mu.Unlock()

	t := time.NewTimer(m.opts.DialTimeout)
	defer t.Stop()
	select {
	case <-ready:
	case <-t.C:
		return nil, 0, fmt.Errorf("transport: dial %q: timed out after %v", node, m.opts.DialTimeout)
	case <-m.ctx.Done():
		return nil, 0, ErrClosed
	}

	p.mu.Lock()
	fc, gen, err := p.fc, p.gen, p.lastErr
	p.mu.Unlock()
	if fc != nil {
		return fc, gen, nil
	}
	if err == nil {
		err = fmt.Errorf("transport: connection to %q lost", node)
	}
	return nil, 0, err
}

// dialPeer performs one connection attempt: dial plus hello.
func (m *Module) dialPeer(node string) (*frameConn, error) {
	ctx, cancel := context.WithTimeout(m.ctx, m.opts.DialTimeout)
	defer cancel()
	conn, err := m.host.Dial(ctx, node+":"+strconv.Itoa(m.opts.Port))
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q: %w", node, err)
	}
	fc := newFrameConn(conn)
	fc.setMetrics(m.codecMet)
	if err := fc.write(frame{header: frameHeader{Type: frameHello, From: m.node}}); err != nil {
		fc.close()
		return nil, fmt.Errorf("transport: hello to %q: %w", node, err)
	}
	return fc, nil
}

// redialLoop runs one reconnection cycle for a peer: bounded dial
// attempts with exponential backoff and jitter (Options.Redial). On
// success the connection is installed and a read loop started; on
// exhaustion the cycle resolves with an error and a later delivery
// starts a fresh cycle. myReady identifies the cycle: if the peer's
// ready channel changes (an inbound connection resolved it, or a
// subsequent drop superseded it), this cycle abandons quietly.
func (m *Module) redialLoop(p *peer, myReady chan struct{}) {
	defer m.wg.Done()
	policy := m.policies.Load().Redial
	var lastErr error
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		if err := m.ctx.Err(); err != nil {
			lastErr = ErrClosed
			break
		}
		p.mu.Lock()
		if p.ready != myReady || p.fc != nil {
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()

		fc, err := m.dialPeer(p.node)
		if err == nil {
			p.mu.Lock()
			if p.ready != myReady || p.fc != nil {
				p.mu.Unlock()
				fc.close()
				return
			}
			p.fc = fc
			p.gen++
			gen := p.gen
			p.dialing = false
			close(myReady)
			p.mu.Unlock()
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				m.readLoop(fc)
				m.peerDisconnected(p, fc)
			}()
			if gen > 1 {
				m.opts.Logger.Info("transport: peer reconnected", "node", p.node, "attempt", attempt)
				m.trace.Event("redial", m.node, "peer "+p.node+" reconnected")
				// Re-announce promptly so the healed peer rebinds
				// dynamic paths without waiting for the announce tick.
				m.dir.AnnounceNow()
			}
			return
		}
		lastErr = err
		if attempt < policy.MaxAttempts {
			if !sleepCtx(m.ctx, policy.Delay(attempt)) {
				lastErr = ErrClosed
				break
			}
		}
	}
	p.mu.Lock()
	if p.ready == myReady && p.fc == nil {
		p.lastErr = lastErr
		p.dialing = false
		close(myReady)
	}
	p.mu.Unlock()
}

// peerDisconnected detaches a dead connection from its peer state and,
// unless the module is closing, starts a proactive redial cycle so the
// link recovers before the next delivery needs it.
func (m *Module) peerDisconnected(p *peer, fc *frameConn) {
	p.mu.Lock()
	if p.fc != fc {
		p.mu.Unlock()
		fc.close()
		return
	}
	p.fc = nil
	spawn := false
	if !p.dialing {
		if m.trackWorker() {
			p.dialing = true
			p.ready = make(chan struct{})
			p.lastErr = nil
			spawn = true
		} else {
			p.ready = closedChan
			p.lastErr = ErrClosed
		}
	}
	ready := p.ready
	p.mu.Unlock()
	fc.close()
	if spawn {
		m.opts.Logger.Info("transport: peer connection lost; redialing", "node", p.node)
		m.trace.Event("peer_lost", m.node, p.node)
		go m.redialLoop(p, ready)
	}
}

// trackWorker adds one to the module WaitGroup unless the module is
// closed. Guarding the Add with m.closed (set before Close waits)
// keeps wg.Add from racing wg.Wait when the caller's goroutine is not
// itself tracked.
func (m *Module) trackWorker() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.wg.Add(1)
	return true
}

// forgetConn routes a dead, possibly-registered connection to
// peerDisconnected (accepted connections learn their node only from the
// hello frame, so the peer is found by connection identity).
func (m *Module) forgetConn(fc *frameConn) {
	m.mu.Lock()
	peers := make([]*peer, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		match := p.fc == fc
		p.mu.Unlock()
		if match {
			m.peerDisconnected(p, fc)
			return
		}
	}
}

// sleepCtx sleeps for d, returning false if ctx finished first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// request sends a frame to a node and waits for its ack/error.
func (m *Module) request(node string, f frame) (frame, error) {
	fc, _, err := m.peerFor(node)
	if err != nil {
		return frame{}, err
	}
	m.mu.Lock()
	m.nextReq++
	id := m.nextReq
	ch := make(chan frame, 1)
	m.pending[id] = ch
	m.mu.Unlock()
	f.header.ID = id
	f.header.From = m.node

	if err := fc.write(f); err != nil {
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
		m.dropPeer(node, fc)
		return frame{}, fmt.Errorf("transport: send to %q: %w", node, err)
	}
	t := time.NewTimer(m.opts.DeliverTimeout)
	defer t.Stop()
	select {
	case resp := <-ch:
		if resp.header.Type == frameError {
			return resp, errors.New(resp.header.Err)
		}
		return resp, nil
	case <-t.C:
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
		return frame{}, fmt.Errorf("transport: request to %q timed out", node)
	case <-m.ctx.Done():
		// Remove the pending entry here too, or the channel leaks in
		// m.pending for the life of the module.
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
		return frame{}, ErrClosed
	}
}

// Connect establishes a communication path between a specific output
// port and a specific input port — the paper's Figure 7-(1) API.
func (m *Module) Connect(src, dst core.PortRef) (PathID, error) {
	return m.ConnectClass(src, dst, qos.Class{})
}

// ConnectClass is Connect with an explicit QoS class.
func (m *Module) ConnectClass(src, dst core.PortRef, class qos.Class) (PathID, error) {
	srcProfile, err := m.dir.Resolve(src.Translator)
	if err != nil {
		return "", err
	}
	if srcProfile.Node != m.node {
		// The owning node knows the endpoints by their wire IDs, not by
		// any remapped names local to this boundary.
		resp, err := m.request(srcProfile.Node, frame{header: frameHeader{
			Type: frameConnect, Src: m.wireRef(src), Dst: m.wireRef(dst), Class: &class,
		}})
		if err != nil {
			return "", err
		}
		return resp.header.PathID, nil
	}
	return m.installStatic(src, dst, class)
}

// wireRef rewrites a port reference's translator ID to wire form for
// frames that cross a remapped boundary (identity without remap rules).
func (m *Module) wireRef(ref core.PortRef) core.PortRef {
	ref.Translator = m.dir.WireID(ref.Translator)
	return ref
}

// ConnectQuery establishes a dynamic message path between a specific
// port and the ports matching a query — the paper's Figure 7-(2) API.
// As matching translators appear in the network they are bound to the
// path; as they disappear they are unbound.
func (m *Module) ConnectQuery(src core.PortRef, q core.Query) (PathID, error) {
	return m.ConnectQueryClass(src, q, qos.Class{})
}

// ConnectQueryClass is ConnectQuery with an explicit QoS class.
func (m *Module) ConnectQueryClass(src core.PortRef, q core.Query, class qos.Class) (PathID, error) {
	srcProfile, err := m.dir.Resolve(src.Translator)
	if err != nil {
		return "", err
	}
	if srcProfile.Node != m.node {
		wq := q
		wq.ExcludeID = m.dir.WireID(wq.ExcludeID)
		resp, err := m.request(srcProfile.Node, frame{header: frameHeader{
			Type: frameConnect, Src: m.wireRef(src), Query: &wq, Class: &class,
		}})
		if err != nil {
			return "", err
		}
		return resp.header.PathID, nil
	}
	return m.installDynamic(src, q, class)
}

// installFromFrame handles a forwarded connect request.
func (m *Module) installFromFrame(f frame) (PathID, error) {
	class := qos.Class{}
	if f.header.Class != nil {
		class = *f.header.Class
	}
	if f.header.Query != nil {
		return m.installDynamic(f.header.Src, *f.header.Query, class)
	}
	return m.installStatic(f.header.Src, f.header.Dst, class)
}

// validateSrc checks that src is a digital output port of a local
// translator and returns its data type.
func (m *Module) validateSrc(src core.PortRef) (core.DataType, error) {
	profile, err := m.dir.Resolve(src.Translator)
	if err != nil {
		return "", err
	}
	if profile.Node != m.node {
		return "", fmt.Errorf("transport: source %s not hosted on %s", src, m.node)
	}
	port, ok := profile.Shape.Port(src.Port)
	if !ok {
		return "", fmt.Errorf("%w: %q on %s", core.ErrNoSuchPort, src.Port, src.Translator)
	}
	if port.Direction != core.Output || port.Kind != core.Digital {
		return "", fmt.Errorf("transport: source %s is not a digital output port", src)
	}
	return port.Type, nil
}

func (m *Module) installStatic(src, dst core.PortRef, class qos.Class) (PathID, error) {
	srcType, err := m.validateSrc(src)
	if err != nil {
		return "", err
	}
	dstProfile, err := m.dir.Resolve(dst.Translator)
	if err != nil {
		return "", err
	}
	dstPort, ok := dstProfile.Shape.Port(dst.Port)
	if !ok {
		return "", fmt.Errorf("%w: %q on %s", core.ErrNoSuchPort, dst.Port, dst.Translator)
	}
	if dstPort.Direction != core.Input || dstPort.Kind != core.Digital {
		return "", fmt.Errorf("transport: destination %s is not a digital input port", dst)
	}
	if !core.Compatible(srcType, dstPort.Type) {
		return "", fmt.Errorf("%w: %s -> %s", ErrIncompatible, srcType, dstPort.Type)
	}
	// A static binding is a live interest in its destination: under
	// interest filtering the peer's adverts for it must keep flowing.
	cancel := m.dir.RegisterIDInterest(dst.Translator)
	id, err := m.addPath(&path{src: src, srcType: srcType, static: &dst, class: class.WithDefaults(), interestCancel: cancel})
	if err != nil {
		cancel()
	}
	return id, err
}

func (m *Module) installDynamic(src core.PortRef, q core.Query, class qos.Class) (PathID, error) {
	srcType, err := m.validateSrc(src)
	if err != nil {
		return "", err
	}
	if q.ExcludeID == "" {
		q.ExcludeID = src.Translator
	}
	// The query is this path's standing interest: registering it makes
	// peers keep advertising matching profiles under interest filtering.
	cancel := m.dir.RegisterInterest(q)
	p := &path{
		src:            src,
		srcType:        srcType,
		query:          &q,
		class:          class.WithDefaults(),
		bound:          make(map[core.TranslatorID]core.PortRef),
		interestCancel: cancel,
	}
	// Evaluate against translators already present.
	for _, candidate := range m.dir.Lookup(q) {
		p.tryBind(candidate, srcType)
	}
	id, err := m.addPath(p)
	if err != nil {
		cancel()
	}
	return id, err
}

// tryBind binds the path to a matching input port of the candidate, if
// any — "bound to the port owned by the target translator, whose data
// type is equivalent to the source port" (paper Section 3.5).
func (p *path) tryBind(candidate core.Profile, srcType core.DataType) {
	for _, port := range candidate.Shape.Inputs(core.Digital) {
		if core.Compatible(srcType, port.Type) {
			p.mu.Lock()
			p.bound[candidate.ID] = core.PortRef{Translator: candidate.ID, Port: port.Name}
			p.dstSnap = nil
			p.mu.Unlock()
			return
		}
	}
}

func (m *Module) addPath(p *path) (PathID, error) {
	cls := p.class
	p.peerGen = make(map[string]uint64)
	p.buf = qos.NewBuffer[core.Message](cls.BufferCapacity, cls.Policy)
	if cls.RateBytesPerSec > 0 {
		p.bytesRL = qos.NewRateLimiter(cls.RateBytesPerSec, cls.RateBytesPerSec)
	}
	if cls.RateMessagesPerSec > 0 {
		p.msgRL = qos.NewRateLimiter(cls.RateMessagesPerSec, cls.RateMessagesPerSec)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrClosed
	}
	m.nextPath++
	p.stripe = m.nextPath
	p.id = PathID(m.node + "#" + strconv.FormatUint(m.nextPath, 10))
	// Resolve metric handles before the path is visible to PathStats.
	p.met = m.newPathMetrics(p.id)
	m.paths[p.id] = p
	m.bySrc[p.src] = append(m.bySrc[p.src], p)
	m.mu.Unlock()

	m.trace.Event("path_connect", m.node, string(p.id))

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.pathWorker(p)
	}()
	return p.id, nil
}

// newPathMetrics resolves a path's registry series. The path label keeps
// one registry usable across many concurrent paths and nodes. Under
// DisablePathMetrics every path shares the one aggregate set instead.
func (m *Module) newPathMetrics(id PathID) pathMetrics {
	if m.sharedPathMet != nil {
		return *m.sharedPathMet
	}
	return m.newPathMetricsFor(id)
}

func (m *Module) newPathMetricsFor(id PathID) pathMetrics {
	reg := m.opts.Obs
	labels := obs.Labels{"node": m.node, "path": string(id)}
	return pathMetrics{
		delivered: reg.Counter("umiddle_transport_path_delivered_total", labels),
		bytes:     reg.Counter("umiddle_transport_path_bytes_total", labels),
		errors:    reg.Counter("umiddle_transport_path_errors_total", labels),
		retries:   reg.Counter("umiddle_transport_path_retries_total", labels),
		redials:   reg.Counter("umiddle_transport_path_redials_total", labels),
		dropped:   reg.Counter("umiddle_transport_path_dropped_total", labels),
		failovers: reg.Counter("umiddle_transport_path_failovers_total", labels),
		latency:   reg.Histogram("umiddle_transport_delivery_latency_seconds", labels, nil),
	}
}

// removePathMetrics drops a removed path's series so long-lived nodes
// don't accumulate unbounded per-path cardinality.
func (m *Module) removePathMetrics(id PathID) {
	if m.sharedPathMet != nil {
		return // aggregate series outlive individual paths
	}
	reg := m.opts.Obs
	labels := obs.Labels{"node": m.node, "path": string(id)}
	for _, name := range []string{
		"umiddle_transport_path_delivered_total",
		"umiddle_transport_path_bytes_total",
		"umiddle_transport_path_errors_total",
		"umiddle_transport_path_retries_total",
		"umiddle_transport_path_redials_total",
		"umiddle_transport_path_dropped_total",
		"umiddle_transport_path_failovers_total",
		"umiddle_transport_delivery_latency_seconds",
	} {
		reg.RemoveSeries(name, labels)
	}
}

// Disconnect tears down a path, local or remote.
func (m *Module) Disconnect(id PathID) error {
	owner := id.node()
	if owner != "" && owner != m.node {
		_, err := m.request(owner, frame{header: frameHeader{Type: frameDisconnect, PathID: id}})
		return err
	}
	return m.removeLocalPath(id)
}

func (m *Module) removeLocalPath(id PathID) error {
	m.mu.Lock()
	p, ok := m.paths[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPathNotFound, id)
	}
	delete(m.paths, id)
	list := m.bySrc[p.src]
	for i, cand := range list {
		if cand == p {
			m.bySrc[p.src] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	if len(m.bySrc[p.src]) == 0 {
		delete(m.bySrc, p.src)
	}
	m.mu.Unlock()
	p.buf.Close()
	if p.interestCancel != nil {
		p.interestCancel()
	}
	m.removePathMetrics(id)
	m.trace.Event("path_disconnect", m.node, string(id))
	return nil
}

// Emit implements core.Sink: translator emissions enter the translation
// buffers of every path rooted at the emitting port. Ownership of the
// payload transfers to the transport (core.Sink contract), so fan-out
// shares one payload across paths instead of deep-copying per path —
// translators and local deliveries treat payloads as immutable, which
// OwnershipTracked verifies on the inbound side.
func (m *Module) Emit(src core.PortRef, msg core.Message) {
	m.mu.Lock()
	paths := append([]*path(nil), m.bySrc[src]...)
	m.mu.Unlock()
	msg.Source = src
	if msg.Time.IsZero() {
		msg.Time = time.Now()
	}
	for _, p := range paths {
		out := msg
		p.mu.Lock()
		p.seq++
		out.Seq = p.seq
		p.mu.Unlock()
		if _, err := p.buf.Push(m.ctx, out); err != nil {
			m.opts.Logger.Warn("transport: emit dropped", "path", p.id, "err", err)
		}
	}
}

// pathWorker drains one path's translation buffer, applying QoS and
// delivering to all bound destinations.
func (m *Module) pathWorker(p *path) {
	var tick uint64
	for {
		msg, err := p.buf.Pop(m.ctx)
		if err != nil {
			return
		}
		if p.msgRL != nil {
			if err := p.msgRL.Wait(m.ctx, 1); err != nil {
				return
			}
		}
		if p.bytesRL != nil {
			if err := p.bytesRL.Wait(m.ctx, float64(len(msg.Payload))); err != nil {
				return
			}
		}
		dsts := p.destinations()
		if len(dsts) == 0 && p.failingOver() {
			// The path had destinations and lost them all. Give the
			// failover the message's retry budget to find a replacement,
			// then drop-after-budget — the same contract a dead static
			// destination gets.
			if dsts = m.awaitFailover(p); len(dsts) == 0 {
				p.mu.Lock()
				p.degraded = true
				p.mu.Unlock()
				p.met.errors.Inc()
				p.met.dropped.Inc()
				m.trace.Event("drop", m.node, string(p.id)+": no candidate after failover budget")
				m.opts.Logger.Warn("transport: message dropped; no failover candidate", "path", p.id)
				continue
			}
		}
		for _, dst := range dsts {
			// Latency is sampled 1-in-8 (first delivery always): the
			// histograms feed metrics, whose quantiles survive sampling,
			// and the two clock reads per message otherwise show up in
			// hot-path CPU profiles.
			sample := tick&7 == 0
			tick++
			var start time.Time
			if sample {
				start = time.Now()
			}
			if err := m.deliverWithRetry(p, dst, msg); err != nil {
				p.met.errors.Inc()
				p.met.dropped.Inc()
				m.trace.Event("drop", m.node, string(p.id)+" -> "+dst.String()+": "+err.Error())
				m.opts.Logger.Warn("transport: message dropped after retries",
					"path", p.id, "dst", dst, "err", err)
				if p.query != nil && !errors.Is(err, ErrClosed) {
					// A destination that ate the whole retry budget is
					// treated as dead: unbind it and fail over instead of
					// feeding it the next message's budget too.
					m.failDestination(p, dst.Translator)
				}
				continue
			}
			p.met.delivered.Inc()
			p.met.bytes.Add(uint64(len(msg.Payload)))
			if sample {
				elapsed := time.Since(start)
				p.met.latency.ObserveDuration(elapsed)
				m.latency.ObserveDuration(elapsed)
			}
		}
	}
}

// deliverWithRetry attempts delivery to one destination under the
// path's retry budget (Options.Retry), backing off between attempts.
// Exhausting the budget returns the last error; the caller drops the
// message for this destination and moves on, so a permanently dead
// destination cannot stall the others on the path.
func (m *Module) deliverWithRetry(p *path, dst core.PortRef, msg core.Message) error {
	policy := m.policies.Load().Retry
	var lastErr error
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			p.met.retries.Inc()
			if !sleepCtx(m.ctx, policy.Delay(attempt-1)) {
				return ErrClosed
			}
		}
		// A degraded static path fails fast per attempt: no dial, no
		// network traffic toward the corpse — just a typed error. The
		// flag is re-checked each attempt so a destination that comes
		// back mid-budget (a healed partition's re-announce) still gets
		// the message.
		if p.static != nil {
			p.mu.Lock()
			dead := p.degraded
			p.mu.Unlock()
			if dead {
				lastErr = fmt.Errorf("%w: %s", ErrDestinationLost, dst)
				continue
			}
		}
		lastErr = m.deliver(p, dst, msg)
		if lastErr == nil {
			return nil
		}
		if errors.Is(lastErr, ErrClosed) {
			return lastErr
		}
	}
	return lastErr
}

// awaitFailover waits under the retry policy's backoff for a failing-over
// dynamic path to rebind, returning the destinations found (nil if the
// budget lapses first).
func (m *Module) awaitFailover(p *path) []core.PortRef {
	policy := m.policies.Load().Retry
	for attempt := 1; attempt < policy.MaxAttempts; attempt++ {
		if !sleepCtx(m.ctx, policy.Delay(attempt)) {
			return nil
		}
		if dsts := p.destinations(); len(dsts) > 0 {
			return dsts
		}
	}
	return nil
}

// deliver routes one message to a destination port, locally or across
// the network. A destination bound through a remapped name crosses the
// boundary in wire form: the owning node knows the translator only by
// its original ID, and that ID's node prefix is the real dial target.
func (m *Module) deliver(p *path, dst core.PortRef, msg core.Message) error {
	dst.Translator = m.dir.WireID(dst.Translator)
	node := dst.Translator.Node()
	if node == "" {
		if profile, err := m.dir.Resolve(dst.Translator); err == nil {
			node = profile.Node
		} else {
			return err
		}
	}
	if node == m.node {
		return m.deliverLocalErr(dst, msg)
	}
	// A node behind a segment boundary is reached through the relay
	// route the directory learned from its adverts: the frame carries
	// the remaining hops and intermediaries forward it (relay.go).
	if first, route, ok := m.routeFor(node); ok {
		f := deliverFrame(m.node, dst, msg)
		f.header.Route = route
		f.header.TTL = m.opts.RelayTTL
		f.header.RelayID = m.relayID.Add(1)
		fc, key, err := m.pathConn(p, first)
		if err != nil {
			return err
		}
		if err := fc.write(f); err != nil {
			p.fcCache = nil
			m.dropPeer(key, fc)
			return err
		}
		return nil
	}
	fc, key, err := m.pathConn(p, node)
	if err != nil {
		return err
	}
	if err := fc.write(deliverFrame(m.node, dst, msg)); err != nil {
		// A failed write may have left a partial frame on the stream,
		// desynchronizing the peer; discard the connection so the redial
		// cycle replaces it cleanly.
		p.fcCache = nil
		m.dropPeer(key, fc)
		return err
	}
	return nil
}

// dropPeer detaches a (possibly corrupted) connection from the peer
// stored under key if it is still the current one, kicking off a
// redial cycle.
func (m *Module) dropPeer(key string, fc *frameConn) {
	m.mu.Lock()
	p, ok := m.peers[key]
	m.mu.Unlock()
	if !ok {
		fc.close()
		return
	}
	m.peerDisconnected(p, fc)
}

func (m *Module) deliverLocal(dst core.PortRef, msg core.Message) {
	if err := m.deliverLocalErr(dst, msg); err != nil {
		m.opts.Logger.Warn("transport: local deliver failed", "dst", dst, "err", err)
	}
}

func (m *Module) deliverLocalErr(dst core.PortRef, msg core.Message) (err error) {
	tr, ok := m.dir.Local(dst.Translator)
	if !ok {
		return fmt.Errorf("%w: %q", directory.ErrNotFound, dst.Translator)
	}
	// A lazy deadline context: every delivery gets the DeliverTimeout
	// bound, but the clock is only read and the runtime timer only armed
	// if the handler actually observes the deadline. Fast handlers — the
	// hot path — never touch the clock or timer subsystem at all.
	lc := lazyTimeoutCtx{parent: m.ctx, timeout: m.opts.DeliverTimeout}
	defer lc.release()
	// A panicking translator handler becomes a per-delivery error: one
	// buggy device handler cannot take down the delivery worker (or, for
	// a local source, the emitting path's worker).
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("transport: translator %s panicked in Deliver: %v", dst.Translator, rec)
			m.trace.Event("deliver_panic", m.node, string(dst.Translator)+": "+fmt.Sprint(rec))
		}
	}()
	return tr.Deliver(&lc, dst.Port, msg)
}

// lazyTimeoutCtx is a context.Context with a timeout that defers both
// reading the clock and creating the underlying timer-backed context
// until a deadline-dependent method — Done(), Deadline(), or a
// could-be-expired Err() — is first observed. Fast handlers (the hot
// path) never touch the clock or the timer subsystem at all. release()
// cancels the timer if one was armed; afterwards the context reports
// Canceled, matching the WithTimeout+defer-cancel idiom it replaces.
type lazyTimeoutCtx struct {
	parent  context.Context
	timeout time.Duration

	mu       sync.Mutex
	deadline time.Time
	ctx      context.Context
	cancel   context.CancelFunc
	released bool
}

// deadlineLocked pins the deadline to timeout-from-first-observation.
// Caller holds c.mu.
func (c *lazyTimeoutCtx) deadlineLocked() time.Time {
	if c.deadline.IsZero() {
		c.deadline = time.Now().Add(c.timeout)
	}
	return c.deadline
}

func (c *lazyTimeoutCtx) materialize() context.Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ctx == nil {
		if c.released {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			c.ctx = ctx
		} else {
			c.ctx, c.cancel = context.WithDeadline(c.parent, c.deadlineLocked())
		}
	}
	return c.ctx
}

func (c *lazyTimeoutCtx) release() {
	c.mu.Lock()
	c.released = true
	cancel := c.cancel
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (c *lazyTimeoutCtx) Deadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deadlineLocked(), true
}

func (c *lazyTimeoutCtx) Done() <-chan struct{} { return c.materialize().Done() }

func (c *lazyTimeoutCtx) Err() error {
	if err := c.parent.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	ctx, released := c.ctx, c.released
	deadline := c.deadline
	if ctx == nil && !released {
		deadline = c.deadlineLocked()
	}
	c.mu.Unlock()
	if ctx != nil {
		return ctx.Err()
	}
	if released {
		return context.Canceled
	}
	if !time.Now().Before(deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

func (c *lazyTimeoutCtx) Value(key any) any { return c.parent.Value(key) }

// dirListener routes directory notifications — translator mapped and
// unmapped, node up and down — into the module's binding maintenance.
type dirListener struct{ m *Module }

var _ directory.NodeListener = dirListener{}
var _ directory.BatchListener = dirListener{}

func (l dirListener) TranslatorMapped(p core.Profile)         { l.m.onMapped(p) }
func (l dirListener) TranslatorUnmapped(id core.TranslatorID) { l.m.onUnmapped(id) }
func (l dirListener) NodeUp(string)                           {}
func (l dirListener) NodeDown(node string)                    { l.m.onNodeDown(node) }

// Batched notifications (one advert mapping or dropping many
// translators at once): one path-table scan per batch instead of one
// per translator — the per-event scans turn quadratic when a sync
// carries thousands of profiles into a node holding thousands of paths.
func (l dirListener) TranslatorsMapped(ps []core.Profile)         { l.m.onMappedBatch(ps) }
func (l dirListener) TranslatorsUnmapped(ids []core.TranslatorID) { l.m.onUnmappedBatch(ids) }

// onMapped re-evaluates dynamic paths when a translator appears, and
// clears the degraded flag of static paths whose destination returned.
func (m *Module) onMapped(p core.Profile) {
	m.mu.Lock()
	dynamic := make([]*path, 0, len(m.paths))
	var static []*path
	for _, pt := range m.paths {
		switch {
		case pt.query != nil:
			dynamic = append(dynamic, pt)
		case pt.static != nil && pt.static.Translator == p.ID:
			static = append(static, pt)
		}
	}
	m.mu.Unlock()
	for _, pt := range dynamic {
		// Memoized: a re-announce with an unchanged profile costs one
		// cache probe per dynamic path instead of O(ports) matching.
		if m.matchCache.Matches(*pt.query, p) {
			pt.tryBind(p, pt.srcType)
			m.noteRebound(pt)
		}
	}
	for _, pt := range static {
		pt.mu.Lock()
		was := pt.degraded
		pt.degraded = false
		pt.mu.Unlock()
		if was {
			m.trace.Event("path_recovered", m.node, string(pt.id)+": destination "+string(p.ID)+" mapped again")
		}
	}
}

// onMappedBatch is onMapped over one advert's worth of profiles with a
// single path-table scan.
func (m *Module) onMappedBatch(ps []core.Profile) {
	if len(ps) == 0 {
		return
	}
	mapped := make(map[core.TranslatorID]*core.Profile, len(ps))
	for i := range ps {
		mapped[ps[i].ID] = &ps[i]
	}
	m.mu.Lock()
	dynamic := make([]*path, 0, len(m.paths))
	var static []*path
	for _, pt := range m.paths {
		switch {
		case pt.query != nil:
			dynamic = append(dynamic, pt)
		case pt.static != nil && mapped[pt.static.Translator] != nil:
			static = append(static, pt)
		}
	}
	m.mu.Unlock()
	for _, pt := range dynamic {
		for i := range ps {
			if m.matchCache.Matches(*pt.query, ps[i]) {
				pt.tryBind(ps[i], pt.srcType)
				m.noteRebound(pt)
			}
		}
	}
	for _, pt := range static {
		pt.mu.Lock()
		was := pt.degraded
		pt.degraded = false
		pt.mu.Unlock()
		if was {
			m.trace.Event("path_recovered", m.node, string(pt.id)+": destination "+string(pt.static.Translator)+" mapped again")
		}
	}
}

// onUnmapped handles a disappeared translator across every path role it
// can play: paths rooted at it are torn down (their source is gone for
// good — deterministic teardown instead of delivery-retry discovery),
// static paths aimed at it degrade and fail fast, and dynamic paths bound
// to it fail over by re-running their query.
func (m *Module) onUnmapped(id core.TranslatorID) {
	m.matchCache.Invalidate(id)
	m.mu.Lock()
	var srcDead, dynamic, static []*path
	for _, pt := range m.paths {
		switch {
		case pt.src.Translator == id:
			srcDead = append(srcDead, pt)
		case pt.query != nil:
			dynamic = append(dynamic, pt)
		case pt.static != nil && pt.static.Translator == id:
			static = append(static, pt)
		}
	}
	m.mu.Unlock()
	for _, pt := range srcDead {
		m.trace.Event("path_source_lost", m.node, string(pt.id)+": source "+string(id)+" unmapped")
		m.removeLocalPath(pt.id) //nolint:errcheck
	}
	for _, pt := range static {
		pt.mu.Lock()
		was := pt.degraded
		pt.degraded = true
		pt.mu.Unlock()
		if !was {
			m.trace.Event("path_degraded", m.node, string(pt.id)+": destination "+string(id)+" lost")
		}
	}
	for _, pt := range dynamic {
		m.failDestination(pt, id)
	}
}

// onUnmappedBatch is onUnmapped over one advert's worth of departures
// with a single path-table scan and one cache sweep.
func (m *Module) onUnmappedBatch(ids []core.TranslatorID) {
	if len(ids) == 0 {
		return
	}
	gone := make(map[core.TranslatorID]bool, len(ids))
	for _, id := range ids {
		m.matchCache.Invalidate(id)
		gone[id] = true
	}
	m.mu.Lock()
	var srcDead, dynamic, static []*path
	for _, pt := range m.paths {
		switch {
		case gone[pt.src.Translator]:
			srcDead = append(srcDead, pt)
		case pt.query != nil:
			dynamic = append(dynamic, pt)
		case pt.static != nil && gone[pt.static.Translator]:
			static = append(static, pt)
		}
	}
	m.mu.Unlock()
	for _, pt := range srcDead {
		m.trace.Event("path_source_lost", m.node, string(pt.id)+": source "+string(pt.src.Translator)+" unmapped")
		m.removeLocalPath(pt.id) //nolint:errcheck
	}
	for _, pt := range static {
		pt.mu.Lock()
		was := pt.degraded
		pt.degraded = true
		pt.mu.Unlock()
		if !was {
			m.trace.Event("path_degraded", m.node, string(pt.id)+": destination "+string(pt.static.Translator)+" lost")
		}
	}
	for _, pt := range dynamic {
		for _, id := range ids {
			m.failDestination(pt, id)
		}
	}
}

// onNodeDown is a safety net under onUnmapped: the directory unmaps each
// of a dead node's translators before NodeDown fires, but a path may
// reference a destination the directory never integrated (a static
// connect by raw ID). Node identity is parsed from the translator ID.
func (m *Module) onNodeDown(node string) {
	m.mu.Lock()
	var dynamic, static []*path
	for _, pt := range m.paths {
		switch {
		case pt.query != nil:
			dynamic = append(dynamic, pt)
		case pt.static != nil && pt.static.Translator.Node() == node:
			static = append(static, pt)
		}
	}
	m.mu.Unlock()
	for _, pt := range static {
		pt.mu.Lock()
		was := pt.degraded
		pt.degraded = true
		pt.mu.Unlock()
		if !was {
			m.trace.Event("path_degraded", m.node, string(pt.id)+": node "+node+" down")
		}
	}
	for _, pt := range dynamic {
		pt.mu.Lock()
		var lost []core.TranslatorID
		for id := range pt.bound {
			if id.Node() == node {
				lost = append(lost, id)
			}
		}
		pt.mu.Unlock()
		for _, id := range lost {
			m.failDestination(pt, id)
		}
	}
}

// failDestination unbinds a lost destination from a dynamic path and
// fails over: the query re-runs immediately and binds every compatible
// candidate in the directory's deterministic (node, ID) order. The path
// keeps delivering to whatever remains bound; the failover latency clock
// starts only when the last destination is gone.
func (m *Module) failDestination(pt *path, id core.TranslatorID) {
	pt.mu.Lock()
	if _, was := pt.bound[id]; !was {
		pt.mu.Unlock()
		return
	}
	delete(pt.bound, id)
	pt.dstSnap = nil
	if len(pt.bound) == 0 && pt.lostAt.IsZero() {
		pt.lostAt = time.Now()
	}
	pt.mu.Unlock()
	pt.met.failovers.Inc()
	m.failovers.Inc()
	m.trace.Event("failover", m.node, string(pt.id)+": destination "+string(id)+" lost; re-running query")
	m.rebind(pt)
}

// rebind re-runs a dynamic path's query against the directory and binds
// every compatible candidate. A node crash makes every dynamic path
// re-query at once; the directory serves the storm from its indexed
// snapshot, and all paths sharing a query template hit the same cached
// result set.
func (m *Module) rebind(pt *path) {
	if pt.query == nil {
		return
	}
	for _, candidate := range m.dir.Lookup(*pt.query) {
		pt.tryBind(candidate, pt.srcType)
	}
	m.noteRebound(pt)
}

// noteRebound closes out a failover on a dynamic path that has regained a
// destination: the lost → rebound latency is observed and the degraded
// flag cleared.
func (m *Module) noteRebound(pt *path) {
	pt.mu.Lock()
	rebound := len(pt.bound) > 0 && (!pt.lostAt.IsZero() || pt.degraded)
	var wait time.Duration
	if rebound {
		if !pt.lostAt.IsZero() {
			wait = time.Since(pt.lostAt)
		}
		pt.lostAt = time.Time{}
		pt.degraded = false
	}
	pt.mu.Unlock()
	if rebound {
		m.failoverLat.ObserveDuration(wait)
		m.trace.Event("path_rebound", m.node, string(pt.id))
	}
}

// PathStats returns statistics for one path.
func (m *Module) PathStats(id PathID) (PathStats, bool) {
	m.mu.Lock()
	p, ok := m.paths[id]
	m.mu.Unlock()
	if !ok {
		return PathStats{}, false
	}
	return p.snapshotStats(), true
}

func (p *path) snapshotStats() PathStats {
	s := PathStats{
		Delivered: p.met.delivered.Value(),
		Bytes:     p.met.bytes.Value(),
		Errors:    p.met.errors.Value(),
		Retries:   p.met.retries.Value(),
		Redials:   p.met.redials.Value(),
		Dropped:   p.met.dropped.Value(),
		Failovers: p.met.failovers.Value(),
	}
	p.mu.Lock()
	s.Bound = len(p.bound)
	if p.static != nil {
		s.Bound = 1
	}
	p.mu.Unlock()
	s.Buffer = p.buf.Stats()
	return s
}

// Paths lists every path hosted by this node.
func (m *Module) Paths() []PathInfo {
	m.mu.Lock()
	paths := make([]*path, 0, len(m.paths))
	for _, p := range m.paths {
		paths = append(paths, p)
	}
	m.mu.Unlock()

	out := make([]PathInfo, 0, len(paths))
	for _, p := range paths {
		info := PathInfo{
			ID:    p.id,
			Src:   p.src,
			Dst:   p.static,
			Query: p.query,
			Bound: p.destinations(),
			Class: p.class,
			State: p.state(),
			Stats: p.snapshotStats(),
		}
		out = append(out, info)
	}
	return out
}
