package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/qos"
)

// maxFrameSize bounds a single frame (header + payload) to keep a
// misbehaving peer from exhausting memory.
const maxFrameSize = 16 << 20

// Frame types of the inter-node protocol.
const (
	frameHello      = "hello"
	frameDeliver    = "deliver"
	frameConnect    = "connect"
	frameDisconnect = "disconnect"
	frameAck        = "ack"
	frameError      = "error"
)

// frameHeader is the JSON-encoded portion of a wire frame. The payload
// travels as raw bytes after the header so bulk media is not inflated by
// JSON encoding.
type frameHeader struct {
	Type string `json:"type"`
	// From names the sending node; used to register accepted
	// connections.
	From string `json:"from"`
	// ID correlates a request with its ack/error.
	ID uint64 `json:"id,omitempty"`

	// Deliver fields.
	Dst     core.PortRef      `json:"dst,omitempty"`
	Src     core.PortRef      `json:"src,omitempty"`
	MsgType core.DataType     `json:"msgType,omitempty"`
	Headers map[string]string `json:"headers,omitempty"`
	Seq     uint64            `json:"seq,omitempty"`
	Sent    time.Time         `json:"sent,omitempty"`

	// Connect fields.
	Query *core.Query `json:"query,omitempty"`
	Class *qos.Class  `json:"class,omitempty"`

	// Ack/err fields.
	PathID PathID `json:"pathId,omitempty"`
	Err    string `json:"err,omitempty"`
}

// frame pairs a header with its raw payload.
type frame struct {
	header  frameHeader
	payload []byte
}

// frameConn wraps a net.Conn with framed, write-locked frame I/O.
type frameConn struct {
	conn net.Conn
	r    *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer
}

func newFrameConn(conn net.Conn) *frameConn {
	return &frameConn{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}
}

// write sends one frame: [4B header len][header JSON][4B payload len][payload].
func (fc *frameConn) write(f frame) error {
	hdr, err := json.Marshal(f.header)
	if err != nil {
		return fmt.Errorf("transport: marshal frame: %w", err)
	}
	if len(hdr)+len(f.payload) > maxFrameSize {
		return fmt.Errorf("transport: frame exceeds %d bytes", maxFrameSize)
	}
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(hdr)))
	if _, err := fc.w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := fc.w.Write(hdr); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(f.payload)))
	if _, err := fc.w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := fc.w.Write(f.payload); err != nil {
		return err
	}
	return fc.w.Flush()
}

// read receives one frame.
func (fc *frameConn) read() (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(fc.r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	hdrLen := binary.BigEndian.Uint32(lenBuf[:])
	if hdrLen > maxFrameSize {
		return frame{}, fmt.Errorf("transport: oversized header (%d bytes)", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(fc.r, hdr); err != nil {
		return frame{}, err
	}
	var f frame
	if err := json.Unmarshal(hdr, &f.header); err != nil {
		return frame{}, fmt.Errorf("transport: bad frame header: %w", err)
	}
	if _, err := io.ReadFull(fc.r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	payloadLen := binary.BigEndian.Uint32(lenBuf[:])
	if payloadLen > maxFrameSize {
		return frame{}, fmt.Errorf("transport: oversized payload (%d bytes)", payloadLen)
	}
	if payloadLen > 0 {
		f.payload = make([]byte, payloadLen)
		if _, err := io.ReadFull(fc.r, f.payload); err != nil {
			return frame{}, err
		}
	}
	return f, nil
}

func (fc *frameConn) close() error { return fc.conn.Close() }

// deliverFrame builds a deliver frame from a message.
func deliverFrame(from string, dst core.PortRef, msg core.Message) frame {
	return frame{
		header: frameHeader{
			Type:    frameDeliver,
			From:    from,
			Dst:     dst,
			Src:     msg.Source,
			MsgType: msg.Type,
			Headers: msg.Headers,
			Seq:     msg.Seq,
			Sent:    msg.Time,
		},
		payload: msg.Payload,
	}
}

// message reconstructs a core.Message from a deliver frame.
func (f frame) message() core.Message {
	return core.Message{
		Type:    f.header.MsgType,
		Payload: f.payload,
		Headers: f.header.Headers,
		Source:  f.header.Src,
		Seq:     f.header.Seq,
		Time:    f.header.Sent,
	}
}
