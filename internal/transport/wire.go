package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qos"
)

// maxFrameSize bounds a single frame (header + payload combined) to
// keep a misbehaving peer from exhausting memory. The write and read
// sides enforce the same combined bound, so every frame a conforming
// writer emits is readable and everything larger is rejected on both
// ends.
const maxFrameSize = 16 << 20

// maxBatchBytes bounds the pending write batch: a writer that would
// grow the batch past this waits for the in-flight flush instead, so a
// stalled connection cannot buffer unbounded memory.
const maxBatchBytes = 1 << 20

// Frame types of the inter-node protocol.
const (
	frameHello      = "hello"
	frameDeliver    = "deliver"
	frameConnect    = "connect"
	frameDisconnect = "disconnect"
	frameAck        = "ack"
	frameError      = "error"
)

// frameHeader is the JSON-encoded portion of a wire frame. The payload
// travels as raw bytes after the header so bulk media is not inflated by
// JSON encoding.
type frameHeader struct {
	Type string `json:"type"`
	// From names the sending node; used to register accepted
	// connections.
	From string `json:"from"`
	// ID correlates a request with its ack/error.
	ID uint64 `json:"id,omitempty"`

	// Deliver fields.
	Dst     core.PortRef      `json:"dst,omitempty"`
	Src     core.PortRef      `json:"src,omitempty"`
	MsgType core.DataType     `json:"msgType,omitempty"`
	Headers map[string]string `json:"headers,omitempty"`
	Seq     uint64            `json:"seq,omitempty"`
	Sent    time.Time         `json:"sent,omitempty"`

	// Connect fields.
	Query *core.Query `json:"query,omitempty"`
	Class *qos.Class  `json:"class,omitempty"`

	// Ack/err fields.
	PathID PathID `json:"pathId,omitempty"`
	Err    string `json:"err,omitempty"`

	// Relay fields, set on deliver frames that cross network segments
	// through intermediary nodes. Route lists the remaining forwarding
	// targets, next hop first, destination node last; a node receiving a
	// non-empty Route forwards to Route[0] instead of delivering. TTL
	// bounds the remaining forwards and RelayID (unique per origin)
	// lets relays suppress duplicate forwards.
	Route   []string `json:"route,omitempty"`
	TTL     int      `json:"fttl,omitempty"`
	RelayID uint64   `json:"relayId,omitempty"`
}

// frame pairs a header with its raw payload.
//
// Payload ownership: a frame produced by read()/readFrameFrom owns a
// pooled payload buffer. The receiver must either copy the payload out
// (frame.message does) or finish using it (frame.messageZeroCopy)
// before calling release(); after release the payload may be recycled
// into a concurrent read and must not be touched.
type frame struct {
	header  frameHeader
	payload []byte
	pooled  bool // payload came from frameBufs and release() returns it
}

// connMetrics surfaces codec behavior through the obs registry. All
// handles are nil-safe, so a zero value disables metrics.
type connMetrics struct {
	// poolGets counts pooled-buffer requests; poolMisses the subset that
	// fell through to a fresh allocation. hit rate = 1 - misses/gets.
	poolGets   *obs.Counter
	poolMisses *obs.Counter
	// batchFrames observes deliver-batch sizes: frames coalesced into
	// each net.Conn write.
	batchFrames *obs.Histogram
}

// frameBufs recycles frame scratch buffers — read-side header and
// payload buffers and write-side batch buffers — across every
// connection in the process.
var frameBufs = sync.Pool{}

// getBuf returns a length-n buffer, reusing a pooled one when its
// capacity suffices.
func getBuf(n int, met *connMetrics) []byte {
	if met != nil {
		met.poolGets.Inc()
	}
	if v := frameBufs.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this frame; let it be collected rather than
		// churning the pool.
	}
	if met != nil {
		met.poolMisses.Inc()
	}
	return make([]byte, n)
}

// putBuf returns a buffer to the pool.
func putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	frameBufs.Put(&b)
}

// release returns the frame's pooled payload buffer (no-op otherwise).
// See the ownership comment on frame.
func (f *frame) release() {
	if f.pooled && f.payload != nil {
		putBuf(f.payload)
	}
	f.payload = nil
	f.pooled = false
}

// frameConn wraps a net.Conn with framed frame I/O. Writes use group
// commit: the first writer to arrive becomes the leader and flushes the
// shared batch buffer with one conn.Write; writers that arrive while a
// flush is in flight append to the next batch and wait for its flush.
// A solo writer therefore pays no added latency (its "batch" is itself,
// flushed immediately), while concurrent writers coalesce into as few
// conn writes as the connection can absorb. Every writer observes the
// result of the write that carried its frame, so delivery retries see
// real connection errors, not a deferred flush's.
type frameConn struct {
	conn net.Conn
	r    *bufio.Reader
	met  *connMetrics

	wmu        sync.Mutex
	wCond      *sync.Cond
	wbuf       []byte // accumulating batch
	wframes    int    // frames in wbuf
	spare      []byte // recycled batch buffer capacity
	leader     bool   // a writer is flushing
	gen        uint64 // generation being accumulated
	flushedGen uint64 // newest generation fully written
	werr       error  // sticky: the connection is unusable after a failed write
}

func newFrameConn(conn net.Conn) *frameConn {
	fc := &frameConn{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		gen:  1,
	}
	fc.wCond = sync.NewCond(&fc.wmu)
	return fc
}

// setMetrics attaches codec metrics; call before the connection is
// shared.
func (fc *frameConn) setMetrics(met *connMetrics) { fc.met = met }

// deliverHdrFlag marks a binary-encoded deliver header in the header
// length word. Deliver frames — the hot path — use a hand-rolled
// length-prefixed binary header; everything else stays JSON, where
// flexibility matters more than the reflection cost. maxFrameSize is
// far below 2^31, so the top bit of the length word is free.
const deliverHdrFlag = 0x8000_0000

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeDeliverHeader appends the binary form of a deliver header:
// From, Dst, Src, MsgType, Seq, Sent (unix nanos), Headers.
func encodeDeliverHeader(buf []byte, h *frameHeader) []byte {
	buf = appendString(buf, h.From)
	buf = appendString(buf, string(h.Dst.Translator))
	buf = appendString(buf, h.Dst.Port)
	buf = appendString(buf, string(h.Src.Translator))
	buf = appendString(buf, h.Src.Port)
	buf = appendString(buf, string(h.MsgType))
	buf = binary.AppendUvarint(buf, h.Seq)
	var sent int64
	if !h.Sent.IsZero() {
		sent = h.Sent.UnixNano()
	}
	buf = binary.AppendVarint(buf, sent)
	buf = binary.AppendUvarint(buf, uint64(len(h.Headers)))
	for k, v := range h.Headers {
		buf = appendString(buf, k)
		buf = appendString(buf, v)
	}
	// Relay section, present only on forwarded frames. Pre-relay headers
	// end exactly here, which is how the decoder tells them apart.
	if len(h.Route) > 0 || h.RelayID != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(h.Route)))
		for _, hop := range h.Route {
			buf = appendString(buf, hop)
		}
		buf = binary.AppendUvarint(buf, uint64(h.TTL))
		buf = binary.AppendUvarint(buf, h.RelayID)
	}
	return buf
}

// errBadDeliverHeader is the shared malformed-header error. A single
// package-level value: decode runs per inbound frame, and allocating a
// fresh fmt.Errorf on every (successful) call showed up in heap
// profiles of the delivery hot path.
var errBadDeliverHeader = errors.New("transport: bad deliver header")

// readHdrStr reads one uvarint-length-prefixed string from data,
// returning the string, the remaining bytes, and ok. A plain function
// (not a closure) so decodeDeliverHeader stays allocation-free and its
// caller's frame can live on the stack.
func readHdrStr(data []byte) (string, []byte, bool) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 || uint64(len(data)-sz) < n {
		return "", data, false
	}
	return string(data[sz : sz+int(n)]), data[sz+int(n):], true
}

// decodeDeliverHeader parses the binary deliver header. data is a
// pooled buffer; every string is copied out by the string conversions.
func decodeDeliverHeader(data []byte, h *frameHeader) error {
	var ok bool
	if h.From, data, ok = readHdrStr(data); !ok {
		return errBadDeliverHeader
	}
	var s string
	if s, data, ok = readHdrStr(data); !ok {
		return errBadDeliverHeader
	}
	h.Dst.Translator = core.TranslatorID(s)
	if h.Dst.Port, data, ok = readHdrStr(data); !ok {
		return errBadDeliverHeader
	}
	if s, data, ok = readHdrStr(data); !ok {
		return errBadDeliverHeader
	}
	h.Src.Translator = core.TranslatorID(s)
	if h.Src.Port, data, ok = readHdrStr(data); !ok {
		return errBadDeliverHeader
	}
	if s, data, ok = readHdrStr(data); !ok {
		return errBadDeliverHeader
	}
	h.MsgType = core.DataType(s)
	seq, sz := binary.Uvarint(data)
	if sz <= 0 {
		return errBadDeliverHeader
	}
	data = data[sz:]
	h.Seq = seq
	sent, sz := binary.Varint(data)
	if sz <= 0 {
		return errBadDeliverHeader
	}
	data = data[sz:]
	if sent != 0 {
		h.Sent = time.Unix(0, sent)
	}
	count, sz := binary.Uvarint(data)
	if sz <= 0 || count > uint64(len(data)-sz) {
		return errBadDeliverHeader
	}
	data = data[sz:]
	if count > 0 {
		h.Headers = make(map[string]string, count)
		for i := uint64(0); i < count; i++ {
			var k, v string
			if k, data, ok = readHdrStr(data); !ok {
				return errBadDeliverHeader
			}
			if v, data, ok = readHdrStr(data); !ok {
				return errBadDeliverHeader
			}
			h.Headers[k] = v
		}
	}
	// Optional relay section: frames encoded before relaying existed (or
	// sent directly) end here, and decode with no route.
	if len(data) != 0 {
		hops, sz := binary.Uvarint(data)
		if sz <= 0 || hops > uint64(len(data)-sz) {
			return errBadDeliverHeader
		}
		data = data[sz:]
		if hops > 0 {
			h.Route = make([]string, 0, hops)
			for i := uint64(0); i < hops; i++ {
				var hop string
				if hop, data, ok = readHdrStr(data); !ok {
					return errBadDeliverHeader
				}
				h.Route = append(h.Route, hop)
			}
		}
		ttl, sz := binary.Uvarint(data)
		if sz <= 0 {
			return errBadDeliverHeader
		}
		data = data[sz:]
		h.TTL = int(ttl)
		rid, sz := binary.Uvarint(data)
		if sz <= 0 {
			return errBadDeliverHeader
		}
		data = data[sz:]
		h.RelayID = rid
	}
	if len(data) != 0 {
		return errBadDeliverHeader
	}
	h.Type = frameDeliver
	return nil
}

// appendFrameEncoded appends one encoded frame — [4B header len word]
// [header][4B payload len][payload] — to buf. On error buf is returned
// unmodified.
func appendFrameEncoded(buf []byte, f frame) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // header length word, patched below
	var hdrLen int
	if f.header.Type == frameDeliver {
		buf = encodeDeliverHeader(buf, &f.header)
		hdrLen = len(buf) - start - 4
		binary.BigEndian.PutUint32(buf[start:], uint32(hdrLen)|deliverHdrFlag)
	} else {
		hdr, err := json.Marshal(f.header)
		if err != nil {
			return buf[:start], fmt.Errorf("transport: marshal frame: %w", err)
		}
		buf = append(buf, hdr...)
		hdrLen = len(hdr)
		binary.BigEndian.PutUint32(buf[start:], uint32(hdrLen))
	}
	if hdrLen+len(f.payload) > maxFrameSize {
		return buf[:start], fmt.Errorf("transport: frame exceeds %d bytes", maxFrameSize)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(f.payload)))
	buf = append(buf, lenBuf[:]...)
	buf = append(buf, f.payload...)
	return buf, nil
}

// encodeFrame renders a frame to its wire form (used by tests and the
// fuzz corpus; write() appends straight into the batch buffer instead).
func encodeFrame(f frame) ([]byte, error) {
	return appendFrameEncoded(nil, f)
}

// write sends one frame, coalescing with concurrent writers (see the
// type comment). The returned error is the error of the conn.Write that
// carried (or would have carried) this frame.
func (fc *frameConn) write(f frame) error {
	fc.wmu.Lock()
	// Backpressure: don't grow the pending batch without bound while a
	// flush is in flight.
	for fc.werr == nil && fc.leader && len(fc.wbuf) >= maxBatchBytes {
		fc.wCond.Wait()
	}
	if fc.werr != nil {
		fc.wmu.Unlock()
		return fc.werr
	}
	if fc.wbuf == nil && fc.spare != nil {
		fc.wbuf, fc.spare = fc.spare, nil
	}
	var encErr error
	fc.wbuf, encErr = appendFrameEncoded(fc.wbuf, f)
	if encErr != nil {
		fc.wCond.Broadcast()
		fc.wmu.Unlock()
		return encErr
	}
	fc.wframes++
	myGen := fc.gen

	if fc.leader {
		// Another writer is flushing; it will pick this batch up next.
		// Wait until the generation holding our frame has been written.
		for fc.werr == nil && fc.flushedGen < myGen {
			fc.wCond.Wait()
		}
		err := fc.werr
		fc.wmu.Unlock()
		return err
	}

	fc.leader = true
	for fc.werr == nil && len(fc.wbuf) > 0 {
		buf := fc.wbuf
		frames := fc.wframes
		flushGen := fc.gen
		fc.wbuf = nil
		fc.wframes = 0
		fc.gen++
		fc.wmu.Unlock()

		if fc.met != nil {
			fc.met.batchFrames.Observe(float64(frames))
		}
		_, werr := fc.conn.Write(buf)

		fc.wmu.Lock()
		fc.flushedGen = flushGen
		if werr != nil {
			fc.werr = werr
		}
		if fc.spare == nil || cap(buf) > cap(fc.spare) {
			fc.spare = buf[:0]
		}
		fc.wCond.Broadcast()
	}
	fc.leader = false
	err := fc.werr
	fc.wCond.Broadcast()
	fc.wmu.Unlock()
	return err
}

// read receives one frame. The frame's payload is a pooled buffer; the
// caller owns it until frame.release().
func (fc *frameConn) read() (frame, error) {
	return readFrameFrom(fc.r, fc.met)
}

// readFrameFrom decodes one frame from r. Header and payload lengths
// are validated against the same combined maxFrameSize bound the writer
// enforces — checking them only individually would accept frames up to
// twice the writable maximum.
func readFrameFrom(r io.Reader, met *connMetrics) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	hdrWord := binary.BigEndian.Uint32(lenBuf[:])
	binaryHdr := hdrWord&deliverHdrFlag != 0
	hdrLen := hdrWord &^ uint32(deliverHdrFlag)
	if hdrLen > maxFrameSize {
		return frame{}, fmt.Errorf("transport: oversized header (%d bytes)", hdrLen)
	}
	hdr := getBuf(int(hdrLen), met)
	if _, err := io.ReadFull(r, hdr); err != nil {
		putBuf(hdr)
		return frame{}, err
	}
	var f frame
	var err error
	if binaryHdr {
		err = decodeDeliverHeader(hdr, &f.header)
	} else {
		// Decode into a separate variable: passing &f.header to
		// json.Unmarshal (an interface) would force every frame — binary
		// path included — onto the heap.
		var jh frameHeader
		if err = json.Unmarshal(hdr, &jh); err != nil {
			err = fmt.Errorf("transport: bad frame header: %w", err)
		} else {
			f.header = jh
		}
	}
	putBuf(hdr)
	if err != nil {
		return frame{}, err
	}
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	payloadLen := binary.BigEndian.Uint32(lenBuf[:])
	if uint64(hdrLen)+uint64(payloadLen) > maxFrameSize {
		return frame{}, fmt.Errorf("transport: oversized frame (%d byte header + %d byte payload)", hdrLen, payloadLen)
	}
	if payloadLen > 0 {
		f.payload = getBuf(int(payloadLen), met)
		f.pooled = true
		if _, err := io.ReadFull(r, f.payload); err != nil {
			f.release()
			return frame{}, err
		}
	}
	return f, nil
}

func (fc *frameConn) close() error { return fc.conn.Close() }

// deliverFrame builds a deliver frame from a message.
func deliverFrame(from string, dst core.PortRef, msg core.Message) frame {
	return frame{
		header: frameHeader{
			Type:    frameDeliver,
			From:    from,
			Dst:     dst,
			Src:     msg.Source,
			MsgType: msg.Type,
			Headers: msg.Headers,
			Seq:     msg.Seq,
			Sent:    msg.Time,
		},
		payload: msg.Payload,
	}
}

// message reconstructs a core.Message from a deliver frame, copying the
// payload out of the frame's (pooled) buffer so the Message is safe to
// retain indefinitely. This is the default delivery path.
func (f frame) message() core.Message {
	msg := f.messageZeroCopy()
	if len(f.payload) > 0 {
		msg.Payload = append(make([]byte, 0, len(f.payload)), f.payload...)
	}
	return msg
}

// messageZeroCopy reconstructs a core.Message whose Payload aliases the
// frame's buffer. The caller must guarantee the Message (and anything
// built from its Payload) is not used after frame.release() — see
// Options.ZeroCopyDeliver for the contract delivered translators must
// meet.
func (f frame) messageZeroCopy() core.Message {
	return core.Message{
		Type:    f.header.MsgType,
		Payload: f.payload,
		Headers: f.header.Headers,
		Source:  f.header.Src,
		Seq:     f.header.Seq,
		Time:    f.header.Sent,
	}
}
