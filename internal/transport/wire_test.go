package transport

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/netemu"
	"repro/internal/qos"
)

// connPair builds two frameConns over an emulated connection.
func connPair(t *testing.T) (*frameConn, *frameConn) {
	t.Helper()
	n := netemu.NewNetwork(netemu.Unlimited())
	t.Cleanup(func() { n.Close() })
	h1, h2 := n.MustAddHost("a"), n.MustAddHost("b")
	l, err := h2.Listen(7000)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err := h1.Dial(context.Background(), "b:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	server := <-accepted
	return newFrameConn(client), newFrameConn(server)
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := connPair(t)
	msg := core.NewMessage("image/jpeg", []byte("payload-bytes")).
		WithHeader("k", "v")
	msg.Seq = 42
	msg.Source = core.PortRef{Translator: "n/x/1", Port: "out"}
	f := deliverFrame("node-a", core.PortRef{Translator: "n/x/2", Port: "in"}, msg)
	if err := a.write(f); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := b.read()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.header.Type != frameDeliver || got.header.From != "node-a" {
		t.Fatalf("header = %+v", got.header)
	}
	m := got.message()
	if m.Type != "image/jpeg" || !bytes.Equal(m.Payload, msg.Payload) ||
		m.Seq != 42 || m.Header("k") != "v" || m.Source != msg.Source {
		t.Fatalf("message = %+v", m)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	a, b := connPair(t)
	if err := a.write(frame{header: frameHeader{Type: frameHello, From: "x"}}); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := b.read()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.header.Type != frameHello || got.payload != nil {
		t.Fatalf("frame = %+v", got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	a, _ := connPair(t)
	big := frame{
		header:  frameHeader{Type: frameDeliver},
		payload: make([]byte, maxFrameSize+1),
	}
	if err := a.write(big); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFrameSequenceProperty(t *testing.T) {
	// Any sequence of frames with arbitrary payloads survives the wire
	// in order.
	a, b := connPair(t)
	f := func(payloads [][]byte) bool {
		if len(payloads) > 16 {
			payloads = payloads[:16]
		}
		go func() {
			for i, p := range payloads {
				a.write(frame{ //nolint:errcheck
					header:  frameHeader{Type: frameDeliver, Seq: uint64(i)},
					payload: p,
				})
			}
		}()
		for i, want := range payloads {
			got, err := b.read()
			if err != nil {
				return false
			}
			if got.header.Seq != uint64(i) {
				return false
			}
			if len(want) == 0 {
				if len(got.payload) != 0 {
					return false
				}
				continue
			}
			if !bytes.Equal(got.payload, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPathIDNode(t *testing.T) {
	if PathID("h1#3").node() != "h1" {
		t.Fatal("node extraction failed")
	}
	if PathID("bare").node() != "" {
		t.Fatal("bare path id should have no node")
	}
}

func TestPartitionMidPathRecordsErrors(t *testing.T) {
	// Failure injection: a cross-node path whose link goes down keeps
	// the path alive, counts delivery errors, and resumes after heal.
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	h1 := newNode(t, net, "h1")
	h2 := newNode(t, net, "h2")
	src := producer("h1", "src", "text/plain")
	dst := newCollector("h2", "dst", "text/plain")
	h1.register(t, src)
	h2.register(t, dst)
	deadline := time.Now().Add(3 * time.Second)
	for len(h1.dir.Lookup(core.Query{NameContains: "dst"})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("h1 never saw dst")
		}
		time.Sleep(10 * time.Millisecond)
	}
	id, err := h1.mod.Connect(portRef(src, "out"), portRef(dst, "in"))
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src.Emit("out", core.TextMessage("before"))
	dst.wait(t, 3*time.Second)

	net.SetLinkDown("h1", "h2", true)
	src.Emit("out", core.TextMessage("during"))
	deadline = time.Now().Add(3 * time.Second)
	for {
		stats, _ := h1.mod.PathStats(id)
		if stats.Errors >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no delivery error recorded: %+v", stats)
		}
		time.Sleep(20 * time.Millisecond)
	}

	net.SetLinkDown("h1", "h2", false)
	// The broken peer connection is discarded; a new emission redials.
	deadline = time.Now().Add(5 * time.Second)
	for dst.count() < 2 {
		src.Emit("out", core.TextMessage("after"))
		if time.Now().After(deadline) {
			t.Fatal("delivery never resumed after heal")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestQoSByteRateLimiting(t *testing.T) {
	n := newNode(t, nil, "h1")
	src := producer("h1", "src", "text/plain")
	dst := newCollector("h1", "dst", "text/plain")
	n.register(t, src)
	n.register(t, dst)
	// 10 kB/s (burst = one second's worth): fifteen 1 kB messages
	// exceed the burst by 5 kB, so the tail is paced for >= ~400ms.
	_, err := n.mod.ConnectClass(portRef(src, "out"), portRef(dst, "in"), qos.Class{
		RateBytesPerSec: 10_000,
		BufferCapacity:  32,
	})
	if err != nil {
		t.Fatalf("ConnectClass: %v", err)
	}
	payload := make([]byte, 1000)
	start := time.Now()
	const count = 15
	for i := 0; i < count; i++ {
		src.Emit("out", core.NewMessage("text/plain", payload))
	}
	for i := 0; i < count; i++ {
		dst.wait(t, 5*time.Second)
	}
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Fatalf("15 kB at 10 kB/s (10 kB burst) took %v, want >= 400ms", elapsed)
	}
}

func TestRemoteConnectCarriesQoSClass(t *testing.T) {
	// A QoS class attached to a remotely forwarded connect request is
	// applied on the owning node: LatestOnly drops stale messages there.
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	h1 := newNode(t, net, "h1")
	h2 := newNode(t, net, "h2")
	src := producer("h1", "src", "text/plain")
	slow := newCollector("h2", "slow", "text/plain")
	h1.register(t, src)
	h2.register(t, slow)
	deadline := time.Now().Add(3 * time.Second)
	for len(h2.dir.Lookup(core.Query{NameContains: "src"})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("h2 never saw src")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Issue the class-carrying connect from h2 (source lives on h1).
	id, err := h2.mod.ConnectClass(portRef(src, "out"), portRef(slow, "in"), qos.Class{
		Policy: qos.LatestOnly,
	})
	if err != nil {
		t.Fatalf("remote ConnectClass: %v", err)
	}
	for i := 0; i < 50; i++ {
		src.Emit("out", core.TextMessage(fmt.Sprintf("%d", i)))
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		stats, ok := h1.mod.PathStats(id)
		if ok && stats.Buffer.Dropped > 0 && stats.Buffer.HighWater == 1 {
			break
		}
		if time.Now().After(deadline) {
			stats, _ := h1.mod.PathStats(id)
			t.Fatalf("LatestOnly class not applied remotely: %+v", stats)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
