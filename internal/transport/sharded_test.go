package transport

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/netemu"
	"repro/internal/qos"
)

// orderedSink records every delivery in arrival order (cloning, per the
// tracked zero-copy contract) for the exactly-once audit.
type orderedSink struct {
	*core.Base
	mu   sync.Mutex
	seen []string
}

func newOrderedSink(node, local, deviceType string) *orderedSink {
	s := &orderedSink{
		Base: core.MustBase(core.Profile{
			ID:         core.MakeTranslatorID(node, "umiddle", local),
			Name:       local,
			Platform:   "umiddle",
			DeviceType: deviceType,
			Node:       node,
			Shape: core.MustShape(
				core.Port{Name: "in", Kind: core.Digital, Direction: core.Input, Type: "text/plain"},
			),
		}),
	}
	s.MustHandle("in", func(_ context.Context, msg core.Message) error {
		payload := string(msg.Payload) // copies: safe to retain
		s.mu.Lock()
		s.seen = append(s.seen, payload)
		s.mu.Unlock()
		return nil
	})
	return s
}

func (s *orderedSink) snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.seen...)
}

// TestShardedDispatchExactlyOnce is the race/soak audit for the
// per-core sharded group-commit: with WriteShards > 1 every outbound
// path is pinned to one of several striped connections per peer, so
// the single-leader flush convoy is gone — but the PR 3 contract must
// survive: every message delivered exactly once, in per-path order,
// nothing dropped, under directory churn and link faults, with the
// race detector watching the striped redial machinery.
func TestShardedDispatchExactlyOnce(t *testing.T) {
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()

	retry := qos.RetryPolicy{MaxAttempts: 12, BaseDelay: 20 * time.Millisecond, MaxDelay: 300 * time.Millisecond, Multiplier: 2}
	mkNode := func(name string) *node {
		host := net.MustAddHost(name)
		dir := directory.New(name, host, directory.Options{AnnounceInterval: 30 * time.Millisecond})
		if err := dir.Start(); err != nil {
			t.Fatalf("directory start: %v", err)
		}
		mod := New(name, host, dir, Options{
			WriteShards:    4,
			DeliverTimeout: 5 * time.Second,
			DialTimeout:    2 * time.Second,
			Retry:          retry,
			Redial:         retry,
		})
		if err := mod.Start(); err != nil {
			t.Fatalf("transport start: %v", err)
		}
		t.Cleanup(func() {
			mod.Close()
			dir.Close()
		})
		return &node{name: name, dir: dir, mod: mod}
	}
	h1 := mkNode("h1")
	h2 := mkNode("h2")

	// Eight dynamic paths h1 → h2, each bound by a unique device-type
	// query; consecutive path stripes land on all four write stripes.
	const pairs = 8
	type pair struct {
		name string
		src  *core.Base
		sink *orderedSink
		id   PathID
	}
	var ps []*pair
	for i := 0; i < pairs; i++ {
		name := string(rune('a' + i))
		p := &pair{
			name: name,
			src:  producer("h1", "shard-src-"+name, "text/plain"),
			sink: newOrderedSink("h2", "shard-dst-"+name, "shard-sink-"+name),
		}
		h1.register(t, p.src)
		h2.register(t, p.sink)
		ps = append(ps, p)
	}
	for _, p := range ps {
		q := core.Query{DeviceType: "shard-sink-" + p.name}
		waitFor(t, 5*time.Second, func() bool { return len(h1.dir.Lookup(q)) == 1 })
		id, err := h1.mod.ConnectQuery(portRef(p.src, "out"), q)
		if err != nil {
			t.Fatalf("ConnectQuery %s: %v", p.name, err)
		}
		p.id = id
	}

	emitFor := 1500 * time.Millisecond
	if testing.Short() {
		emitFor = 500 * time.Millisecond
	}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup

	// Directory churn: translators flap on h2 while deliveries flow —
	// every mapped/unmapped notification re-runs the dynamic-path scan
	// and invalidates the match cache under load.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(120 * time.Millisecond):
			}
			fl := producer("h2", fmt.Sprintf("shard-flapper-%d", i), "text/plain")
			fl.Bind(h2.mod)
			if err := h2.dir.AddLocal(fl); err != nil {
				continue
			}
			time.Sleep(60 * time.Millisecond)
			h2.dir.RemoveLocal(fl.Profile().ID) //nolint:errcheck
		}
	}()

	// Link faults: two cuts inside the retry budget. Every striped
	// connection dies with the link; each stripe must redial
	// independently and no frame may be lost or duplicated across the
	// reconnects.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for _, at := range []time.Duration{emitFor / 4, emitFor * 2 / 3} {
			select {
			case <-stop:
				return
			case <-time.After(at):
			}
			net.SetLinkDown("h1", "h2", true)
			time.Sleep(150 * time.Millisecond)
			net.SetLinkDown("h1", "h2", false)
		}
	}()

	// Sequenced open emission: Block-policy buffers stall the producer
	// during a fault window instead of dropping.
	sent := make([]int, pairs)
	var emitWG sync.WaitGroup
	for pi, p := range ps {
		emitWG.Add(1)
		go func(pi int, p *pair) {
			defer emitWG.Done()
			deadline := time.Now().Add(emitFor)
			for i := 0; time.Now().Before(deadline); i++ {
				p.src.Emit("out", core.NewMessage("text/plain", []byte(fmt.Sprintf("%s:%d", p.name, i))))
				sent[pi] = i + 1
				time.Sleep(2 * time.Millisecond)
			}
		}(pi, p)
	}
	emitWG.Wait()
	close(stop)
	churnWG.Wait()

	// Drain, then audit: exactly once, in order, nothing dropped.
	for pi, p := range ps {
		waitFor(t, 10*time.Second, func() bool {
			p.sink.mu.Lock()
			got := len(p.sink.seen)
			p.sink.mu.Unlock()
			return got >= sent[pi]
		})
		seen := p.sink.snapshot()
		if len(seen) != sent[pi] {
			t.Fatalf("pair %s: delivered %d, sent %d (duplicates?)", p.name, len(seen), sent[pi])
		}
		for i, payload := range seen {
			if want := fmt.Sprintf("%s:%d", p.name, i); payload != want {
				t.Fatalf("pair %s: delivery %d = %q, want %q (lost, duplicated, or reordered)", p.name, i, payload, want)
			}
		}
		stats, ok := h1.mod.PathStats(p.id)
		if !ok {
			t.Fatalf("pair %s: path stats gone", p.name)
		}
		if stats.Dropped != 0 {
			t.Fatalf("pair %s: %d deliveries dropped", p.name, stats.Dropped)
		}
	}

	// The striping must actually have engaged: h1 holds stripe peers
	// for h2 beyond the primary connection.
	h1.mod.mu.Lock()
	stripes := 0
	for key := range h1.mod.peers {
		if strings.Contains(key, stripeSep) {
			stripes++
		}
	}
	h1.mod.mu.Unlock()
	if stripes == 0 {
		t.Fatal("no striped peer connections were established")
	}

	// No ownership violations and queues drained on both ends.
	for _, n := range []*node{h1, h2} {
		if got := n.mod.OwnershipViolations(); got != 0 {
			t.Fatalf("node %s: %d ownership violations", n.name, got)
		}
	}
}
