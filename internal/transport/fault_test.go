package transport

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/netemu"
	"repro/internal/qos"
)

// fastRetry keeps fault-tolerance cadence quick for tests.
func fastRetry() qos.RetryPolicy {
	return qos.RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Multiplier: 2, NoJitter: true}
}

// newNodeOpts is newNode with explicit transport options.
func newNodeOpts(t *testing.T, net *netemu.Network, name string, opts Options) *node {
	t.Helper()
	var host *netemu.Host
	if net != nil {
		host = net.MustAddHost(name)
	}
	dir := directory.New(name, host, directory.Options{AnnounceInterval: 20 * time.Millisecond})
	if err := dir.Start(); err != nil {
		t.Fatalf("directory start: %v", err)
	}
	mod := New(name, host, dir, opts)
	if err := mod.Start(); err != nil {
		t.Fatalf("transport start: %v", err)
	}
	t.Cleanup(func() {
		mod.Close()
		dir.Close()
	})
	return &node{name: name, dir: dir, mod: mod}
}

// rawSink listens on a host's transport port and swallows everything
// without ever replying — a peer that accepts but never acks.
func rawSink(t *testing.T, net *netemu.Network, name string, port int) {
	t.Helper()
	host := net.MustAddHost(name)
	l, err := host.Listen(port)
	if err != nil {
		t.Fatalf("rawSink listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()
}

// TestPendingRequestCleanedUpOnClose: a request cut short by module
// shutdown must remove its correlation entry from m.pending. The seed
// deleted the entry on the write-error and timeout arms only, so every
// request outstanding at Close leaked its channel for the life of the
// process.
func TestPendingRequestCleanedUpOnClose(t *testing.T) {
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	h1 := newNodeOpts(t, net, "h1", Options{DeliverTimeout: time.Minute})
	rawSink(t, net, "h2", h1.mod.opts.Port)

	done := make(chan error, 1)
	go func() {
		_, err := h1.mod.request("h2", frame{header: frameHeader{Type: frameDisconnect, PathID: "h2#1"}})
		done <- err
	}()

	// Wait for the request to be registered, then shut down underneath it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		h1.mod.mu.Lock()
		n := len(h1.mod.pending)
		h1.mod.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never registered in m.pending")
		}
		time.Sleep(2 * time.Millisecond)
	}
	h1.mod.Close()

	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("request err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request did not return after Close")
	}
	h1.mod.mu.Lock()
	leaked := len(h1.mod.pending)
	h1.mod.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d pending entries leaked after Close", leaked)
	}
}

// blockedCollector is a translator whose input handler parks until
// released, signalling entry.
type blockedCollector struct {
	*core.Base
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBlockedCollector(node, local string, typ core.DataType) *blockedCollector {
	c := &blockedCollector{
		Base: core.MustBase(core.Profile{
			ID:       core.MakeTranslatorID(node, "umiddle", local),
			Name:     local,
			Platform: "umiddle",
			Node:     node,
			Shape: core.MustShape(
				core.Port{Name: "in", Kind: core.Digital, Direction: core.Input, Type: typ},
			),
		}),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	c.MustHandle("in", func(_ context.Context, _ core.Message) error {
		c.once.Do(func() { close(c.entered) })
		<-c.release
		return nil
	})
	return c
}

// TestSlowDeliveryDoesNotBlockControlFrames: with a deliberately stuck
// translator on h2, a control request from h1 (which travels the same
// connection and needs h2's ack) must still complete promptly. The seed
// ran Translator.Deliver synchronously on the connection read loop, so
// the ack stalled behind the stuck delivery until DeliverTimeout.
func TestSlowDeliveryDoesNotBlockControlFrames(t *testing.T) {
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	opts := Options{DeliverTimeout: 10 * time.Second}
	h1 := newNodeOpts(t, net, "h1", opts)
	h2 := newNodeOpts(t, net, "h2", opts)

	src := producer("h1", "src", "text/plain")
	stuck := newBlockedCollector("h2", "stuck", "text/plain")
	h1.register(t, src)
	h2.register(t, stuck)
	defer close(stuck.release)

	// A second source hosted on h2, so h1 can issue a forwarded Connect
	// that must round-trip an ack through h2's read loop.
	src2 := producer("h2", "src2", "text/plain")
	aux := newCollector("h2", "aux", "text/plain")
	h2.register(t, src2)
	h2.register(t, aux)

	deadline := time.Now().Add(3 * time.Second)
	for len(h1.dir.Lookup(core.Query{NameContains: "stuck"})) == 0 ||
		len(h1.dir.Lookup(core.Query{NameContains: "src2"})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("h1 never learned h2's translators")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, err := h1.mod.Connect(portRef(src, "out"), portRef(stuck, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src.Emit("out", core.NewMessage("text/plain", []byte("jam")))
	select {
	case <-stuck.entered:
	case <-time.After(3 * time.Second):
		t.Fatal("delivery never reached the stuck translator")
	}

	// The deliver frame is now parked inside Translator.Deliver on h2.
	// A forwarded Connect must still ack quickly.
	start := time.Now()
	if _, err := h1.mod.Connect(portRef(src2, "out"), portRef(aux, "in")); err != nil {
		t.Fatalf("forwarded Connect while delivery stuck: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("control frame stalled %v behind a stuck delivery", elapsed)
	}
}

// TestDialTimeoutHonored: Options.DialTimeout bounds how long a caller
// blocks on an unreachable peer. The seed hardcoded 5 seconds.
func TestDialTimeoutHonored(t *testing.T) {
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	h1 := newNodeOpts(t, net, "h1", Options{
		DialTimeout: 100 * time.Millisecond,
		Redial:      fastRetry(),
	})
	// h2 exists and listens, but 2s of one-way latency makes the dial
	// handshake take ~4s — far beyond DialTimeout.
	rawSink(t, net, "h2", h1.mod.opts.Port)
	net.SetLink("h1", "h2", netemu.LinkProfile{Latency: 2 * time.Second})

	start := time.Now()
	_, _, err := h1.mod.peerFor("h2")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("peerFor succeeded across a 4s-RTT link with a 100ms DialTimeout")
	}
	if elapsed > time.Second {
		t.Fatalf("peerFor blocked %v, want ~DialTimeout (100ms)", elapsed)
	}
}

// TestDeadPeerFailsBounded: when every redial attempt fails, deliveries
// resolve with the cycle's error instead of hanging, and a later call
// starts a fresh cycle.
func TestDeadPeerFailsBounded(t *testing.T) {
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	h1 := newNodeOpts(t, net, "h1", Options{
		DialTimeout: 2 * time.Second,
		Redial:      qos.RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Multiplier: 2, NoJitter: true},
	})
	net.MustAddHost("h2") // exists, nothing listening: dials are refused

	start := time.Now()
	_, _, err := h1.mod.peerFor("h2")
	if err == nil {
		t.Fatal("peerFor to a dead node succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("dead-node peerFor took %v, want bounded by redial budget", elapsed)
	}
}

// TestConcurrentEmitDisconnectPeerDrop exercises Emit, path Disconnect,
// and forcible connection drops concurrently; run under -race.
func TestConcurrentEmitDisconnectPeerDrop(t *testing.T) {
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	opts := Options{
		DeliverTimeout: 2 * time.Second,
		DialTimeout:    time.Second,
		Retry:          fastRetry(),
		Redial:         fastRetry(),
	}
	h1 := newNodeOpts(t, net, "h1", opts)
	h2 := newNodeOpts(t, net, "h2", opts)

	src := producer("h1", "src", "text/plain")
	dst := newCollector("h2", "dst", "text/plain")
	h1.register(t, src)
	h2.register(t, dst)

	deadline := time.Now().Add(3 * time.Second)
	for len(h1.dir.Lookup(core.Query{NameContains: "dst"})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("h1 never saw dst")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := h1.mod.Connect(portRef(src, "out"), portRef(dst, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // emitter
		defer wg.Done()
		for i := 0; i < 100; i++ {
			src.Emit("out", core.TextMessage("x"))
			time.Sleep(time.Millisecond)
		}
	}()
	go func() { // connection dropper
		defer wg.Done()
		for i := 0; i < 10; i++ {
			net.DropConnections("h1", "h2")
			time.Sleep(10 * time.Millisecond)
		}
	}()
	go func() { // path churner
		defer wg.Done()
		for i := 0; i < 20; i++ {
			id, err := h1.mod.Connect(portRef(src, "out"), portRef(dst, "in"))
			if err != nil {
				continue
			}
			time.Sleep(2 * time.Millisecond)
			h1.mod.Disconnect(id)
		}
	}()
	wg.Wait()
	// Deliveries should still flow on the surviving path afterwards.
	src.Emit("out", core.TextMessage("after-churn"))
	waitDeadline := time.Now().Add(5 * time.Second)
	for {
		if dst.count() > 0 {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatal("no deliveries at all after churn")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
