package transport

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/netemu"
)

func TestMessageCopySemantics(t *testing.T) {
	// message() must copy the payload out of the frame buffer;
	// messageZeroCopy() must alias it (that aliasing is the whole point
	// of zero-copy delivery).
	f := frame{
		header:  frameHeader{Type: frameDeliver, MsgType: "text/plain"},
		payload: []byte("abc"),
	}
	copied := f.message()
	zc := f.messageZeroCopy()
	f.payload[0] = 'X'
	if string(copied.Payload) != "abc" {
		t.Fatalf("message() aliases the frame buffer: %q", copied.Payload)
	}
	if string(zc.Payload) != "Xbc" {
		t.Fatalf("messageZeroCopy() does not alias the frame buffer: %q", zc.Payload)
	}
}

// ownershipNode stands up a node whose transport uses the given
// delivery ownership mode.
func ownershipNode(t *testing.T, net *netemu.Network, name string, mode Ownership) *node {
	t.Helper()
	host := net.MustAddHost(name)
	dir := directory.New(name, host, directory.Options{AnnounceInterval: 20 * time.Millisecond})
	if err := dir.Start(); err != nil {
		t.Fatalf("directory start: %v", err)
	}
	mod := New(name, host, dir, Options{DeliverTimeout: 2 * time.Second, DeliverOwnership: mode})
	if err := mod.Start(); err != nil {
		t.Fatalf("transport start: %v", err)
	}
	t.Cleanup(func() {
		mod.Close()
		dir.Close()
	})
	return &node{name: name, dir: dir, mod: mod}
}

// rawRetainer is a translator that retains delivered messages without
// cloning — legal only under OwnershipCopy. The retained slices are
// exactly what the aliasing tests inspect (and mutate).
type rawRetainer struct {
	*core.Base
	mu   sync.Mutex
	msgs []core.Message
}

func newRawRetainer(node, local string, typ core.DataType) *rawRetainer {
	r := &rawRetainer{
		Base: core.MustBase(core.Profile{
			ID:       core.MakeTranslatorID(node, "umiddle", local),
			Name:     local,
			Platform: "umiddle",
			Node:     node,
			Shape: core.MustShape(
				core.Port{Name: "in", Kind: core.Digital, Direction: core.Input, Type: typ},
			),
		}),
	}
	r.MustHandle("in", func(_ context.Context, msg core.Message) error {
		r.mu.Lock()
		r.msgs = append(r.msgs, msg)
		r.mu.Unlock()
		return nil
	})
	return r
}

func (r *rawRetainer) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

// connectWhenVisible waits for dst to appear in src's directory and
// installs a static path between them.
func connectWhenVisible(t *testing.T, n *node, src core.Translator, dst core.Translator) {
	t.Helper()
	waitFor(t, 3*time.Second, func() bool {
		_, err := n.dir.Resolve(dst.Profile().ID)
		return err == nil
	})
	if _, err := n.mod.Connect(portRef(src, "out"), portRef(dst, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}
}

// TestCopyOwnershipSafeToRetain: under OwnershipCopy every delivered
// payload is copied out of the pooled frame buffer, so a translator may
// retain messages indefinitely while later traffic recycles the
// buffers. (This was the pre-tracked default; the mode exists for
// translator sets that retain by design.)
func TestCopyOwnershipSafeToRetain(t *testing.T) {
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	h1 := ownershipNode(t, net, "h1", OwnershipCopy)
	h2 := ownershipNode(t, net, "h2", OwnershipCopy)
	src := producer("h1", "src", "text/plain")
	dst := newRawRetainer("h2", "dst", "text/plain")
	h1.register(t, src)
	h2.register(t, dst)
	connectWhenVisible(t, h1, src, dst)

	const n = 400
	for i := 0; i < n; i++ {
		// Distinguishable payloads: length and fill derive from i, so a
		// buffer recycled into a later frame corrupts both.
		src.Emit("out", core.NewMessage("text/plain", bytes.Repeat([]byte{byte(i)}, 512+i)))
	}
	waitFor(t, 5*time.Second, func() bool { return dst.count() >= n })

	dst.mu.Lock()
	defer dst.mu.Unlock()
	for i, msg := range dst.msgs {
		if len(msg.Payload) != 512+i {
			t.Fatalf("msg %d: len = %d, want %d", i, len(msg.Payload), 512+i)
		}
		for j, b := range msg.Payload {
			if b != byte(i) {
				t.Fatalf("msg %d corrupted at byte %d: %#x != %#x", i, j, b, byte(i))
			}
		}
	}
	if got := h2.mod.OwnershipViolations(); got != 0 {
		t.Fatalf("copy mode reported %d ownership violations", got)
	}
}

// TestTrackedOwnershipCleanRun: the tracked default delivers zero-copy;
// a conforming translator (clones before retaining) sees intact
// payloads across far more messages than the quarantine holds, and no
// violations are reported.
func TestTrackedOwnershipCleanRun(t *testing.T) {
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	h1 := ownershipNode(t, net, "h1", OwnershipTracked)
	h2 := ownershipNode(t, net, "h2", OwnershipTracked)
	src := producer("h1", "src", "text/plain")
	dst := newCollector("h2", "dst", "text/plain") // clones on retain
	h1.register(t, src)
	h2.register(t, dst)
	connectWhenVisible(t, h1, src, dst)

	const n = 3 * quarantineDepth // force plenty of verified evictions
	for i := 0; i < n; i++ {
		src.Emit("out", core.NewMessage("text/plain", bytes.Repeat([]byte{byte(i)}, 64+i%512)))
	}
	waitFor(t, 10*time.Second, func() bool { return dst.count() >= n })

	dst.mu.Lock()
	defer dst.mu.Unlock()
	for i, msg := range dst.msgs {
		if len(msg.Payload) != 64+i%512 {
			t.Fatalf("msg %d: len = %d, want %d", i, len(msg.Payload), 64+i%512)
		}
		for j, b := range msg.Payload {
			if b != byte(i) {
				t.Fatalf("msg %d corrupted at byte %d: %#x != %#x", i, j, b, byte(i))
			}
		}
	}
	if got := h2.mod.OwnershipViolations(); got != 0 {
		t.Fatalf("clean run reported %d ownership violations", got)
	}
}

// TestTrackedOwnershipDetectsMutation is the aliasing regression test
// for the tracked default: a translator that mutates a delivered
// payload after its Deliver returned is caught by the quarantine
// checksum, counted, and its buffer discarded instead of recycled.
func TestTrackedOwnershipDetectsMutation(t *testing.T) {
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	h1 := ownershipNode(t, net, "h1", OwnershipTracked)
	h2 := ownershipNode(t, net, "h2", OwnershipTracked)
	src := producer("h1", "src", "text/plain")
	dst := newRawRetainer("h2", "dst", "text/plain") // contract violator
	h1.register(t, src)
	h2.register(t, dst)
	connectWhenVisible(t, h1, src, dst)

	const n = 8
	for i := 0; i < n; i++ {
		src.Emit("out", core.NewMessage("text/plain", bytes.Repeat([]byte{byte(i)}, 256)))
	}
	waitFor(t, 5*time.Second, func() bool { return dst.count() >= n })

	// The violation: scribble into payloads the translator already
	// returned from Deliver. The buffers are quarantined, not yet
	// recycled — the mutation cannot corrupt later frames, but the
	// checksum verification at close must catch it.
	dst.mu.Lock()
	for i := range dst.msgs {
		if len(dst.msgs[i].Payload) > 0 {
			dst.msgs[i].Payload[0] ^= 0xff
		}
	}
	dst.mu.Unlock()

	if err := h2.mod.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := h2.mod.OwnershipViolations(); got < n {
		t.Fatalf("OwnershipViolations = %d, want >= %d", got, n)
	}
}

// TestTrackedOwnershipMultiHopIntegrity covers the forwarded-frame
// path: on a chain a—b—c the intermediary forwards frames zero-copy
// (the payload aliases its pooled read buffer until the group-commit
// writer has copied it into the outbound batch). Every payload must
// arrive intact at the far end under the tracked default, with no
// violations reported by any hop.
func TestTrackedOwnershipMultiHopIntegrity(t *testing.T) {
	net, err := netemu.NewMesh(netemu.Unlimited(), netemu.ChainTopology("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	na := meshNode(t, net, "a", false)
	nb := meshNode(t, net, "b", true)
	nc := meshNode(t, net, "c", false)

	src := producer("a", "camera", "image/jpeg")
	dst := newCollector("c", "tv", "image/jpeg") // clones on retain
	na.register(t, src)
	nc.register(t, dst)
	waitFor(t, 3*time.Second, func() bool {
		if _, err := na.dir.Resolve(dst.Profile().ID); err != nil {
			return false
		}
		hops, ok := na.dir.Route("c")
		return ok && len(hops) == 1 && hops[0] == "b"
	})
	if _, err := na.mod.Connect(portRef(src, "out"), portRef(dst, "in")); err != nil {
		t.Fatalf("connect across segments: %v", err)
	}

	const n = 300
	for i := 0; i < n; i++ {
		na.mod.Emit(portRef(src, "out"),
			core.NewMessage("image/jpeg", bytes.Repeat([]byte{byte(i)}, 200+i)))
	}
	waitFor(t, 10*time.Second, func() bool { return dst.count() >= n })

	dst.mu.Lock()
	defer dst.mu.Unlock()
	for i, msg := range dst.msgs {
		if len(msg.Payload) != 200+i {
			t.Fatalf("msg %d: len = %d, want %d", i, len(msg.Payload), 200+i)
		}
		for j, b := range msg.Payload {
			if b != byte(i) {
				t.Fatalf("relayed msg %d corrupted at byte %d: %#x != %#x", i, j, b, byte(i))
			}
		}
	}
	if got := relayedCount(nb); got == 0 {
		t.Fatal("middle node forwarded no frames")
	}
	for _, nd := range []*node{na, nb, nc} {
		if got := nd.mod.OwnershipViolations(); got != 0 {
			t.Fatalf("node %s reported %d ownership violations", nd.name, got)
		}
	}
}
