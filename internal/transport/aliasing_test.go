package transport

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netemu"
)

func TestMessageCopySemantics(t *testing.T) {
	// message() must copy the payload out of the frame buffer;
	// messageZeroCopy() must alias it (that aliasing is the whole point
	// of the zero-copy opt-in).
	f := frame{
		header:  frameHeader{Type: frameDeliver, MsgType: "text/plain"},
		payload: []byte("abc"),
	}
	copied := f.message()
	zc := f.messageZeroCopy()
	f.payload[0] = 'X'
	if string(copied.Payload) != "abc" {
		t.Fatalf("message() aliases the frame buffer: %q", copied.Payload)
	}
	if string(zc.Payload) != "Xbc" {
		t.Fatalf("messageZeroCopy() does not alias the frame buffer: %q", zc.Payload)
	}
}

func TestDeliveredPayloadSafeToRetain(t *testing.T) {
	// The default delivery path hands translators payloads they may
	// retain indefinitely, while the frames they rode in on recycle
	// their buffers into later reads. If frame.message() ever stopped
	// copying, the retained payloads would be overwritten by later
	// traffic — and with -race the concurrent reuse shows up as a data
	// race. (This is the regression test for the pooled-codec ownership
	// rule; see Options.ZeroCopyDeliver for the opt-out contract.)
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	h1 := newNode(t, net, "h1")
	h2 := newNode(t, net, "h2")
	src := producer("h1", "src", "text/plain")
	dst := newCollector("h2", "dst", "text/plain")
	h1.register(t, src)
	h2.register(t, dst)
	deadline := time.Now().Add(3 * time.Second)
	for len(h1.dir.Lookup(core.Query{NameContains: "dst"})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("h1 never saw dst")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := h1.mod.Connect(portRef(src, "out"), portRef(dst, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}

	const n = 400
	for i := 0; i < n; i++ {
		// Distinguishable payloads: length and fill derive from i, so a
		// buffer recycled into a later frame corrupts both.
		src.Emit("out", core.NewMessage("text/plain", bytes.Repeat([]byte{byte(i)}, 512+i)))
	}
	deadline = time.Now().Add(5 * time.Second)
	for dst.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d delivered", dst.count(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	dst.mu.Lock()
	defer dst.mu.Unlock()
	for i, msg := range dst.msgs {
		if len(msg.Payload) != 512+i {
			t.Fatalf("msg %d: len = %d, want %d", i, len(msg.Payload), 512+i)
		}
		for j, b := range msg.Payload {
			if b != byte(i) {
				t.Fatalf("msg %d corrupted at byte %d: %#x != %#x", i, j, b, byte(i))
			}
		}
	}
}
