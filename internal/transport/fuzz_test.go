package transport

import (
	"bytes"
	"maps"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/core"
)

// FuzzFrameRoundTrip drives arbitrary frames through encodeFrame /
// readFrameFrom and asserts the decoded frame is field-for-field
// identical. It exercises both codecs: deliver frames take the binary
// header fast path, control frames the JSON path.
func FuzzFrameRoundTrip(f *testing.F) {
	// Corpus drawn from wire_test.go's round-trip cases.
	f.Add(byte(0), "node-a", "n/x/2", "in", "n/x/1", "out", "image/jpeg", "k", "v", uint64(42), int64(1_700_000_000_000_000_000), []byte("payload-bytes"))
	f.Add(byte(1), "x", "", "", "", "", "", "", "", uint64(0), int64(0), []byte(nil))
	f.Add(byte(2), "h1", "", "", "", "", "", "", "", uint64(7), int64(0), []byte{})
	f.Add(byte(3), "h2", "", "", "", "", "", "", "", uint64(9), int64(-1), []byte("err"))
	f.Add(byte(0), "", "", "", "", "", "", "", "", uint64(0), int64(0), []byte{0, 1, 2, 0xff})

	f.Fuzz(func(t *testing.T, kind byte, from, dstTr, dstPort, srcTr, srcPort, msgType, hk, hv string, seq uint64, sent int64, payload []byte) {
		var fr frame
		switch kind % 4 {
		case 0:
			fr.header = frameHeader{
				Type:    frameDeliver,
				From:    from,
				Dst:     core.PortRef{Translator: core.TranslatorID(dstTr), Port: dstPort},
				Src:     core.PortRef{Translator: core.TranslatorID(srcTr), Port: srcPort},
				MsgType: core.DataType(msgType),
				Seq:     seq,
			}
			if sent != 0 {
				fr.header.Sent = time.Unix(0, sent)
			}
			if hk != "" || hv != "" {
				fr.header.Headers = map[string]string{hk: hv}
			}
			fr.payload = payload
		case 1:
			fr.header = frameHeader{Type: frameHello, From: from}
		case 2:
			fr.header = frameHeader{Type: frameAck, From: from, ID: seq, PathID: PathID(dstTr)}
		case 3:
			fr.header = frameHeader{Type: frameError, From: from, ID: seq, Err: hv}
			fr.payload = payload
		}
		if fr.header.Type != frameDeliver {
			// encoding/json replaces invalid UTF-8 with U+FFFD, which is
			// lossy by design; the binary deliver codec is byte-exact.
			for _, s := range []string{from, dstTr, hv} {
				if !utf8.ValidString(s) {
					t.Skip("invalid UTF-8 through JSON codec")
				}
			}
		}

		wire, err := encodeFrame(fr)
		if err != nil {
			// Only the size bound may reject a frame built from valid
			// fields.
			if len(payload) <= maxFrameSize/2 {
				t.Fatalf("encode rejected in-bounds frame: %v", err)
			}
			return
		}
		got, err := readFrameFrom(bytes.NewReader(wire), nil)
		if err != nil {
			t.Fatalf("decode of freshly encoded frame failed: %v", err)
		}
		defer got.release()

		h, g := fr.header, got.header
		if g.Type != h.Type || g.From != h.From || g.ID != h.ID ||
			g.Dst != h.Dst || g.Src != h.Src || g.MsgType != h.MsgType ||
			g.Seq != h.Seq || g.PathID != h.PathID || g.Err != h.Err {
			t.Fatalf("header mismatch:\n sent %+v\n got  %+v", h, g)
		}
		if !g.Sent.Equal(h.Sent) {
			t.Fatalf("Sent mismatch: sent %v got %v", h.Sent, g.Sent)
		}
		if !maps.Equal(g.Headers, h.Headers) {
			t.Fatalf("Headers mismatch: sent %v got %v", h.Headers, g.Headers)
		}
		if !bytes.Equal(got.payload, fr.payload) {
			t.Fatalf("payload mismatch: sent %d bytes, got %d", len(fr.payload), len(got.payload))
		}
	})
}

// FuzzFrameRead feeds raw bytes to the frame decoder: it must never
// panic, never return a frame violating the size bound, and anything it
// does accept must survive re-encoding and decode back to the same
// header.
func FuzzFrameRead(f *testing.F) {
	seed := func(fr frame) {
		if wire, err := encodeFrame(fr); err == nil {
			f.Add(wire)
			// Truncations and a flipped codec bit probe the error paths.
			f.Add(wire[:len(wire)/2])
			mut := bytes.Clone(wire)
			mut[0] ^= 0x80
			f.Add(mut)
		}
	}
	seed(frame{header: frameHeader{Type: frameHello, From: "x"}})
	seed(deliverFrame("node-a", core.PortRef{Translator: "n/x/2", Port: "in"},
		core.NewMessage("image/jpeg", []byte("payload-bytes")).WithHeader("k", "v")))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x80, 0, 0, 2, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrameFrom(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		defer fr.release()
		wire, err := encodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		again, err := readFrameFrom(bytes.NewReader(wire), nil)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		defer again.release()
		if again.header.Type != fr.header.Type || again.header.Seq != fr.header.Seq ||
			again.header.Dst != fr.header.Dst || !bytes.Equal(again.payload, fr.payload) {
			t.Fatalf("decode/encode/decode not stable:\n first %+v\n again %+v", fr.header, again.header)
		}
	})
}
