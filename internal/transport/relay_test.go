package transport

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/netemu"
	"repro/internal/obs"
	"repro/internal/qos"
)

// meshNode stands up a directory + transport pair on a host of an
// existing (possibly segmented) network. relay enables directory advert
// relaying; the transport forwards frames whenever routed ones arrive.
func meshNode(t *testing.T, net *netemu.Network, name string, relay bool) *node {
	t.Helper()
	host := net.Host(name)
	if host == nil {
		host = net.MustAddHost(name)
	}
	dir := directory.New(name, host, directory.Options{
		AnnounceInterval: 20 * time.Millisecond,
		Relay:            relay,
		RelayTTL:         6,
	})
	if err := dir.Start(); err != nil {
		t.Fatalf("directory start: %v", err)
	}
	mod := New(name, host, dir, Options{
		DeliverTimeout: 2 * time.Second,
		DialTimeout:    time.Second,
		Retry:          qos.RetryPolicy{MaxAttempts: 6, BaseDelay: 20 * time.Millisecond},
		RelayTTL:       6,
	})
	if err := mod.Start(); err != nil {
		t.Fatalf("transport start: %v", err)
	}
	t.Cleanup(func() {
		mod.Close()
		dir.Close()
	})
	return &node{name: name, dir: dir, mod: mod}
}

func relayedCount(n *node) uint64 {
	return n.mod.Obs().Counter("umiddle_transport_frames_relayed_total", obs.Labels{"node": n.name}).Value()
}

// TestDeliverAcrossSegments: on a chain a—b—c the source node shares no
// link with the destination; a path bound from a to c must deliver
// through b — the directory supplies the route, b's transport forwards
// the frame, and the middle node's relay counters account for it.
func TestDeliverAcrossSegments(t *testing.T) {
	net, err := netemu.NewMesh(netemu.Unlimited(), netemu.ChainTopology("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	na := meshNode(t, net, "a", false)
	nb := meshNode(t, net, "b", true)
	nc := meshNode(t, net, "c", false)

	src := producer("a", "camera", "image/jpeg")
	dst := newCollector("c", "tv", "image/jpeg")
	na.register(t, src)
	nc.register(t, dst)

	// Discovery itself crosses the boundary via relayed adverts.
	waitFor(t, 3*time.Second, func() bool {
		_, err := na.dir.Resolve(dst.Profile().ID)
		if err != nil {
			return false
		}
		hops, ok := na.dir.Route("c")
		return ok && len(hops) == 1 && hops[0] == "b"
	})

	if _, err := na.mod.Connect(portRef(src, "out"), portRef(dst, "in")); err != nil {
		t.Fatalf("connect across segments: %v", err)
	}
	na.mod.Emit(portRef(src, "out"), core.Message{Type: "image/jpeg", Payload: []byte("frame-1")})
	msg := dst.wait(t, 3*time.Second)
	if string(msg.Payload) != "frame-1" {
		t.Fatalf("payload = %q", msg.Payload)
	}
	if got := relayedCount(nb); got == 0 {
		t.Fatal("middle node forwarded no frames")
	}
	if got := relayedCount(na); got != 0 {
		t.Fatalf("source node counted %d forwards for its own frames", got)
	}
	// Source metadata survives the hops intact.
	if msg.Source != portRef(src, "out") {
		t.Fatalf("source = %v", msg.Source)
	}
}

// TestRelayFailoverDiamond: with two disjoint relay paths a—b—c and
// a—d—c, crashing intermediary b must re-route deliveries through d —
// the route hint heals from the adverts still flowing via d, and the
// retry budget absorbs the transition.
func TestRelayFailoverDiamond(t *testing.T) {
	topo := netemu.Topology{
		"ab": {"a", "b"}, "bc": {"b", "c"},
		"ad": {"a", "d"}, "dc": {"d", "c"},
	}
	net, err := netemu.NewMesh(netemu.Unlimited(), topo)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	na := meshNode(t, net, "a", false)
	meshNode(t, net, "b", true)
	nd := meshNode(t, net, "d", true)
	nc := meshNode(t, net, "c", false)

	src := producer("a", "camera", "image/jpeg")
	dst := newCollector("c", "tv", "image/jpeg")
	na.register(t, src)
	nc.register(t, dst)
	waitFor(t, 3*time.Second, func() bool {
		_, err := na.dir.Resolve(dst.Profile().ID)
		if err != nil {
			return false
		}
		_, ok := na.dir.Route("c")
		return ok
	})
	if _, err := na.mod.Connect(portRef(src, "out"), portRef(dst, "in")); err != nil {
		t.Fatal(err)
	}
	na.mod.Emit(portRef(src, "out"), core.Message{Type: "image/jpeg", Payload: []byte("before")})
	dst.wait(t, 3*time.Second)

	if _, err := net.CrashNode("b"); err != nil {
		t.Fatal(err)
	}
	// The b route (if that is the one in use) stops delivering adverts;
	// equal-length d routes take over within an announce interval or two.
	waitFor(t, 3*time.Second, func() bool {
		hops, ok := na.dir.Route("c")
		return ok && len(hops) == 1 && hops[0] == "d"
	})
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		na.mod.Emit(portRef(src, "out"), core.Message{
			Type: "image/jpeg", Payload: []byte(fmt.Sprintf("after-%d", i)),
			Headers: map[string]string{"phase": "after"},
		})
		got := func() bool {
			for {
				select {
				case m := <-dst.ch:
					if m.Headers["phase"] == "after" {
						return true
					}
				case <-time.After(200 * time.Millisecond):
					return false
				}
			}
		}()
		if got {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no delivery through the surviving relay after crashing b")
		}
	}
	if got := relayedCount(nd); got == 0 {
		t.Fatal("surviving relay d forwarded no frames")
	}
}

// TestWireRouteRoundtrip: the binary deliver codec carries the relay
// section when present — and frames encoded without one (the entire
// pre-relay corpus) still decode, with no route.
func TestWireRouteRoundtrip(t *testing.T) {
	routed := deliverFrame("a", core.PortRef{Translator: "c/umiddle/tv", Port: "in"}, core.Message{
		Type: "image/jpeg", Payload: []byte("px"),
		Source: core.PortRef{Translator: "a/umiddle/cam", Port: "out"},
		Seq:    7,
	})
	routed.header.Route = []string{"b", "c"}
	routed.header.TTL = 5
	routed.header.RelayID = 99

	plain := deliverFrame("a", core.PortRef{Translator: "b/umiddle/tv", Port: "in"}, core.Message{
		Type: "text/plain", Payload: []byte("hi"),
	})

	for _, tc := range []struct {
		name string
		f    frame
	}{{"routed", routed}, {"plain", plain}} {
		data, err := encodeFrame(tc.f)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		got, err := readFrameFrom(bytes.NewReader(data), nil)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if fmt.Sprint(got.header.Route) != fmt.Sprint(tc.f.header.Route) ||
			got.header.TTL != tc.f.header.TTL ||
			got.header.RelayID != tc.f.header.RelayID ||
			got.header.Dst != tc.f.header.Dst ||
			string(got.payload) != string(tc.f.payload) {
			t.Fatalf("%s: roundtrip mismatch: %+v vs %+v", tc.name, got.header, tc.f.header)
		}
		got.release()
	}
	if plainRoute := plain.header.Route; plainRoute != nil {
		t.Fatal("plain frame grew a route")
	}
}

// TestRelayWindow exercises the duplicate-suppression window.
func TestRelayWindow(t *testing.T) {
	w := &relayWindow{}
	if !w.observe(10) || w.observe(10) {
		t.Fatal("first/dup handling broken")
	}
	if !w.observe(12) || !w.observe(11) || w.observe(11) {
		t.Fatal("in-window reordering broken")
	}
	if !w.observe(100) || w.observe(36) || !w.observe(37) {
		t.Fatal("window slide broken")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}
