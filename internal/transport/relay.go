package transport

import (
	"fmt"
	"slices"

	"repro/internal/core"
)

// dstStripe hashes a destination port to a stable write stripe (FNV-1a
// over the translator ID and port name).
func dstStripe(dst core.PortRef) uint64 {
	const offset, prime = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset)
	for _, c := range []byte(dst.Translator) {
		h = (h ^ uint64(c)) * prime
	}
	for _, c := range []byte(dst.Port) {
		h = (h ^ uint64(c)) * prime
	}
	return h
}

// Multi-hop delivery: on a segmented network (netemu links) two nodes
// may share no link, so a direct dial fails. The directory's mesh layer
// learns a relay route toward every node from the path its adverts
// traveled (directory.Route); deliver() consults it and source-routes
// the frame — the header carries the remaining hops and each
// intermediary forwards to the next one. Forwards are bounded by a TTL
// and deduplicated per (origin, relay id), and run on the dispatcher's
// bounded workers so a slow next hop backpressures the inbound
// connection rather than ballooning queues.
//
// Only deliver frames are routed. Control requests (connect /
// disconnect) still require a shared link with the destination's owner:
// their ack correlation is per-connection, which a relayed reply would
// break. Paths are installed from the source node's side, so dynamic
// binding across segments works as long as the emitting node installs
// the path — the documented limitation is remote path installation
// (Figure 7-(1) issued from a third node) across a segment boundary.

// relayWindow is a sliding duplicate-suppression window over one
// origin's relay ids: highest id seen plus a 64-wide bitmap below it.
type relayWindow struct {
	max  uint64
	bits uint64
}

// observe records id and reports whether it was new.
func (w *relayWindow) observe(id uint64) bool {
	switch {
	case w.max == 0 || id > w.max:
		shift := id - w.max
		if w.max == 0 || shift >= 64 {
			w.bits = 1
		} else {
			w.bits = w.bits<<shift | 1
		}
		w.max = id
		return true
	case w.max-id < 64:
		mask := uint64(1) << (w.max - id)
		if w.bits&mask != 0 {
			return false
		}
		w.bits |= mask
		return true
	default:
		return false
	}
}

// relayDup reports whether (origin, id) was already forwarded.
func (m *Module) relayDup(origin string, id uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.relaySeen[origin]
	if w == nil {
		w = &relayWindow{}
		m.relaySeen[origin] = w
	}
	return !w.observe(id)
}

// routeFor asks the directory for the relay path toward a node and
// builds the frame route: the intermediaries after the first hop, then
// the destination node itself. ok is false when the node is directly
// reachable (or unknown) — the caller should dial directly then.
func (m *Module) routeFor(node string) (first string, route []string, ok bool) {
	if m.dir == nil {
		return "", nil, false
	}
	hops, live := m.dir.Route(node)
	if !live || len(hops) == 0 {
		return "", nil, false
	}
	route = make([]string, 0, len(hops))
	route = append(route, hops[1:]...)
	route = append(route, node)
	return hops[0], route, true
}

// forwardFrame relays one in-transit deliver frame to its next hop.
// Runs on a dispatcher worker; the caller settles the frame's buffer
// and accounting afterwards.
func (m *Module) forwardFrame(f frame) {
	hdr := f.header
	if m.relayDup(hdr.From, hdr.RelayID) {
		m.relayDupDrop.Inc()
		return
	}
	if hdr.TTL <= 1 {
		m.relayTTLDrop.Inc()
		m.opts.Logger.Warn("transport: relay TTL exhausted", "from", hdr.From, "dst", hdr.Dst)
		return
	}
	next := hdr.Route[0]
	hdr.Route = slices.Clone(hdr.Route[1:])
	if len(hdr.Route) == 0 {
		hdr.Route = nil // destination next: it receives a plain deliver
	}
	hdr.TTL--
	// Forwarded frames stripe by destination port: frames for one
	// destination stay on one ordered stream (preserving the per-path
	// sequence the dispatcher promises downstream) while different
	// destinations spread across the striped write connections.
	fc, _, key, err := m.peerForStripe(next, dstStripe(hdr.Dst))
	if err != nil {
		m.relayRouteFail.Inc()
		m.opts.Logger.Warn("transport: relay next hop unreachable", "next", next, "err", err)
		return
	}
	// The payload still aliases the pooled read buffer; write() copies it
	// into the batch buffer before returning, so release-after-return in
	// the caller is safe.
	if err := fc.write(frame{header: hdr, payload: f.payload}); err != nil {
		m.relayRouteFail.Inc()
		m.dropPeer(key, fc)
		return
	}
	m.relayed.Inc()
	m.relayedBytes.Add(uint64(len(f.payload)))
	m.trace.Event("frame_relayed", m.node, fmt.Sprintf("%s -> %s via us", hdr.From, next))
}
