package transport

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Ownership selects how inbound payload buffers are handed to local
// translators. The buffers come from a process-wide pool; the question
// is who is allowed to touch one after Translator.Deliver returns.
type Ownership int

const (
	// OwnershipTracked (the default) delivers the pooled buffer
	// zero-copy and enforces the contract instead of trusting it: after
	// Deliver returns, the buffer enters a quarantine ring with a
	// checksum and is only recycled once the checksum verifies. A
	// translator that mutates a delivered payload after returning is
	// detected (umiddle_transport_ownership_violations_total), the
	// tainted buffer is discarded rather than recycled, and the event
	// is traced. Detection covers the quarantine window (the last
	// quarantineDepth deliveries plus everything still unflushed at
	// Close); a violator can corrupt only its own copy, never a later
	// frame's.
	OwnershipTracked Ownership = iota
	// OwnershipCopy copies every payload out of the pooled buffer
	// before delivery — the old default. The message is safe to retain
	// indefinitely; the cost is one allocation and copy per inbound
	// message, which dominates the hot path at high rates.
	OwnershipCopy
	// OwnershipAliased delivers zero-copy with no tracking: the buffer
	// is recycled the moment Deliver returns. Fastest, but a violating
	// translator corrupts future frames undetected. Only for translator
	// sets audited by the OwnershipTracked regression tests.
	OwnershipAliased
)

// quarantineDepth is the number of delivered buffers held back from the
// pool for verification. Deep enough to catch the common bug shape — a
// translator finishing asynchronous work a few deliveries late —
// while bounding held memory to depth × payload size.
const quarantineDepth = 256

// bufSum is a fast 64-bit checksum over b: four independent FNV-style
// mix-and-multiply lanes, 32 bytes per iteration. A single lane's
// xor-multiply chain is latency-bound (each step waits on the previous
// multiply); four lanes keep the multiplier busy, which matters because
// the checksum runs twice per message on the delivery hot path (admit
// and evict-verify).
func bufSum(b []byte) uint64 {
	const prime = 0x100000001b3
	s0 := uint64(len(b))*0x9e3779b97f4a7c15 + 0xcbf29ce484222325
	s1 := uint64(0x9e3779b97f4a7c15)
	s2 := uint64(0x6a09e667f3bcc909)
	s3 := uint64(0xbb67ae8584caa73b)
	for len(b) >= 32 {
		s0 = (s0 ^ binary.LittleEndian.Uint64(b)) * prime
		s1 = (s1 ^ binary.LittleEndian.Uint64(b[8:])) * prime
		s2 = (s2 ^ binary.LittleEndian.Uint64(b[16:])) * prime
		s3 = (s3 ^ binary.LittleEndian.Uint64(b[24:])) * prime
		b = b[32:]
	}
	s := s0
	s = (s ^ s1) * prime
	s = (s ^ s2) * prime
	s = (s ^ s3) * prime
	for len(b) >= 8 {
		s = (s ^ binary.LittleEndian.Uint64(b)) * prime
		b = b[8:]
	}
	for _, c := range b {
		s = (s ^ uint64(c)) * prime
	}
	return s
}

// quarEntry is one payload awaiting verified release.
type quarEntry struct {
	payload []byte
	sum     uint64
}

// quarantine is the tracked-ownership ring: delivered pooled buffers
// are admitted with a checksum and recycled only after the checksum
// verifies on eviction (ring full) or flush (module close).
type quarantine struct {
	node       string
	violations *obs.Counter
	trace      *obs.Trace

	mu   sync.Mutex
	ring [quarantineDepth]quarEntry
	head int // next slot to fill (and oldest entry when full)
	n    int
}

func newQuarantine(node string, violations *obs.Counter, trace *obs.Trace) *quarantine {
	return &quarantine{node: node, violations: violations, trace: trace}
}

// admit takes ownership of a pooled payload buffer after delivery. The
// checksum is computed outside the lock; eviction of the displaced
// oldest entry verifies and releases it.
func (q *quarantine) admit(payload []byte) {
	e := quarEntry{payload: payload, sum: bufSum(payload)}
	q.mu.Lock()
	var evicted quarEntry
	if q.n == quarantineDepth {
		evicted = q.ring[q.head]
	} else {
		q.n++
	}
	q.ring[q.head] = e
	q.head = (q.head + 1) % quarantineDepth
	q.mu.Unlock()
	if evicted.payload != nil {
		q.verifyRelease(evicted)
	}
}

// verifyRelease recycles a quarantined buffer if its checksum still
// holds; a mismatch means some translator wrote into a payload it had
// already returned — count it, trace it, and discard the tainted
// buffer instead of recycling corruption into a future frame.
func (q *quarantine) verifyRelease(e quarEntry) {
	if bufSum(e.payload) == e.sum {
		putBuf(e.payload)
		return
	}
	q.violations.Inc()
	if q.trace != nil {
		q.trace.Event("ownership_violation", q.node,
			fmt.Sprintf("delivered payload (%d bytes) mutated after Deliver returned; buffer discarded", len(e.payload)))
	}
}

// flush verifies and releases everything still quarantined (close
// path), so violations within the final window are still reported.
func (q *quarantine) flush() {
	q.mu.Lock()
	entries := make([]quarEntry, 0, q.n)
	for i := 0; i < q.n; i++ {
		idx := (q.head - q.n + i + quarantineDepth) % quarantineDepth
		entries = append(entries, q.ring[idx])
		q.ring[idx] = quarEntry{}
	}
	q.n = 0
	q.head = 0
	q.mu.Unlock()
	for _, e := range entries {
		if e.payload != nil {
			q.verifyRelease(e)
		}
	}
}
