package transport

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/netemu"
	"repro/internal/obs"
)

func waitCond(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestPathStatsIsRegistryView: PathStats values and the registry's
// umiddle_transport_path_* series are the same numbers.
func TestPathStatsIsRegistryView(t *testing.T) {
	n := newNode(t, nil, "h1")
	src := producer("h1", "camera", "image/jpeg")
	dst := newCollector("h1", "tv", "image/jpeg")
	n.register(t, src)
	n.register(t, dst)

	id, err := n.mod.Connect(portRef(src, "out"), portRef(dst, "in"))
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src.Emit("out", core.NewMessage("image/jpeg", []byte("frame-1")))
	dst.wait(t, 2*time.Second)

	waitCond(t, 2*time.Second, func() bool {
		s, ok := n.mod.PathStats(id)
		return ok && s.Delivered == 1
	})
	stats, _ := n.mod.PathStats(id)
	labels := obs.Labels{"node": "h1", "path": string(id)}
	if v := n.mod.Obs().Counter("umiddle_transport_path_delivered_total", labels).Value(); v != stats.Delivered {
		t.Fatalf("registry delivered = %d, PathStats = %d", v, stats.Delivered)
	}
	if v := n.mod.Obs().Counter("umiddle_transport_path_bytes_total", labels).Value(); v != stats.Bytes {
		t.Fatalf("registry bytes = %d, PathStats = %d", v, stats.Bytes)
	}

	// Delivery latency was observed on both the per-path and the
	// aggregate histogram.
	if c := n.mod.Obs().Histogram("umiddle_transport_delivery_latency_seconds", labels, nil).Count(); c != 1 {
		t.Fatalf("per-path latency count = %d, want 1", c)
	}
	agg := n.mod.Obs().Histogram("umiddle_transport_delivery_latency_seconds", obs.Labels{"node": "h1"}, nil)
	if agg.Count() != 1 {
		t.Fatalf("aggregate latency count = %d, want 1", agg.Count())
	}

	// Disconnect removes the per-path series (cardinality hygiene) and
	// traces the transition.
	if err := n.mod.Disconnect(id); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	for _, c := range n.mod.Obs().Snapshot().Counters {
		if c.Labels["path"] == string(id) {
			t.Fatalf("per-path series %s survived disconnect", c.Name)
		}
	}
	kinds := make(map[string]bool)
	for _, e := range n.mod.Obs().Trace().Events() {
		kinds[e.Kind] = true
	}
	if !kinds["path_connect"] || !kinds["path_disconnect"] {
		t.Fatalf("trace missing path transitions, got %v", kinds)
	}
}

// TestMetricsExposedEagerly: the latency histogram and queue-depth
// gauge render on /metrics before any traffic — the acceptance check
// curls a freshly started daemon.
func TestMetricsExposedEagerly(t *testing.T) {
	n := newNode(t, nil, "h1")
	var sb strings.Builder
	if err := n.mod.Obs().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE umiddle_transport_delivery_latency_seconds histogram",
		`umiddle_transport_delivery_latency_seconds_count{node="h1"} 0`,
		"# TYPE umiddle_transport_delivery_queue_depth gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestSharedRegistryAcrossNodes: two modules on one registry keep their
// series apart via the node label, as umiddled does.
func TestSharedRegistryAcrossNodes(t *testing.T) {
	reg := obs.NewRegistry()
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()

	mods := make(map[string]*Module)
	for _, name := range []string{"h1", "h2"} {
		host := net.MustAddHost(name)
		dir := directory.New(name, host, directory.Options{AnnounceInterval: 20 * time.Millisecond})
		if err := dir.Start(); err != nil {
			t.Fatalf("directory start %s: %v", name, err)
		}
		mod := New(name, host, dir, Options{Obs: reg})
		if err := mod.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		t.Cleanup(func() { mod.Close(); dir.Close() })
		mods[name] = mod
	}
	if mods["h1"].Obs() != reg || mods["h2"].Obs() != reg {
		t.Fatal("modules did not adopt the shared registry")
	}
	var h1, h2 bool
	for _, h := range reg.Snapshot().Histograms {
		if h.Name != "umiddle_transport_delivery_latency_seconds" {
			continue
		}
		switch h.Labels["node"] {
		case "h1":
			h1 = true
		case "h2":
			h2 = true
		}
	}
	if !h1 || !h2 {
		t.Fatal("shared registry missing per-node latency series")
	}
}
