package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", Labels{"node": "h1"})
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if again := r.Counter("requests_total", Labels{"node": "h1"}); again.Value() != 5 {
		t.Fatalf("re-get counter = %d, want 5", again.Value())
	}
	// Different labels is a different series.
	if other := r.Counter("requests_total", Labels{"node": "h2"}); other.Value() != 0 {
		t.Fatalf("other-label counter = %d, want 0", other.Value())
	}

	g := r.Gauge("depth", nil)
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x", nil)
	g := r.Gauge("y", nil)
	h := r.Histogram("z", nil, nil)
	tr := r.Trace()
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	h.ObserveDuration(time.Millisecond)
	tr.Record(Event{Kind: "k"})
	tr.Event("k", "n", "d")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Events() != nil {
		t.Fatal("nil handles must discard")
	}
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", nil, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if math.Abs(snap.Sum-5.56) > 1e-9 {
		t.Fatalf("sum = %v, want 5.56", snap.Sum)
	}
	wantCum := []uint64{2, 3, 4, 5}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(snap.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket must be +Inf")
	}
	if m := snap.Mean(); math.Abs(m-5.56/5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	// Median falls in the first bucket (2 of 5 <= 0.01, 3 of 5 <= 0.1).
	if q := snap.Quantile(0.5); q != 0.1 {
		t.Fatalf("p50 = %v, want 0.1", q)
	}
	if q := snap.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("p100 = %v, want +Inf", q)
	}
}

func TestTraceRingOverwrites(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Kind: "k", Detail: string(rune('a' + i))})
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("len = %d, want 4", len(events))
	}
	// Oldest-first, and Seq keeps counting across overwrites.
	for i, e := range events {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if events[0].Detail != "g" || events[3].Detail != "j" {
		t.Fatalf("ring order wrong: %v", events)
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", nil).Inc()
	r.Counter("a_total", Labels{"node": "h2"}).Inc()
	r.Counter("a_total", Labels{"node": "h1"}).Inc()
	snap := r.Snapshot()
	if len(snap.Counters) != 3 {
		t.Fatalf("counters = %d", len(snap.Counters))
	}
	if snap.Counters[0].Labels["node"] != "h1" || snap.Counters[1].Labels["node"] != "h2" ||
		snap.Counters[2].Name != "b_total" {
		t.Fatalf("order wrong: %+v", snap.Counters)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Describe("umiddle_announces_total", "Directory announcements sent.")
	r.Counter("umiddle_announces_total", Labels{"node": "h1"}).Add(3)
	r.Gauge("umiddle_queue_depth", Labels{"node": "h1"}).Set(2)
	h := r.Histogram("umiddle_latency_seconds", Labels{"node": "h1"}, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP umiddle_announces_total Directory announcements sent.",
		"# TYPE umiddle_announces_total counter",
		`umiddle_announces_total{node="h1"} 3`,
		"# TYPE umiddle_queue_depth gauge",
		`umiddle_queue_depth{node="h1"} 2`,
		"# TYPE umiddle_latency_seconds histogram",
		`umiddle_latency_seconds_bucket{le="0.1",node="h1"} 1`,
		`umiddle_latency_seconds_bucket{le="1",node="h1"} 2`,
		`umiddle_latency_seconds_bucket{le="+Inf",node="h1"} 2`,
		`umiddle_latency_seconds_sum{node="h1"} 0.55`,
		`umiddle_latency_seconds_count{node="h1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRemoveSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", Labels{"path": "h1#1"}).Inc()
	r.RemoveSeries("c_total", Labels{"path": "h1#1"})
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Fatalf("series survived removal: %+v", snap.Counters)
	}
	// Re-creating after removal starts fresh.
	if v := r.Counter("c_total", Labels{"path": "h1#1"}).Value(); v != 0 {
		t.Fatalf("recreated counter = %d, want 0", v)
	}
}

// TestConcurrentUse exercises every handle type from many goroutines;
// `go test -race ./internal/obs` is part of scripts/verify.sh.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total", Labels{"node": "h1"}).Inc()
				r.Gauge("g", nil).Add(1)
				r.Histogram("h_seconds", nil, nil).Observe(float64(i) / 1000)
				r.Trace().Event("k", "h1", "x")
				if i%50 == 0 {
					r.Snapshot()
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total", Labels{"node": "h1"}).Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("h_seconds", nil, nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
	if got := r.Trace().Total(); got != 8*500 {
		t.Fatalf("trace total = %d, want %d", got, 8*500)
	}
}
