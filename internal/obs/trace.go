package obs

import (
	"sync"
	"time"
)

// Event is one entry in the event-trace ring: a state transition in the
// bridging pipeline (translator mapped/unmapped, path
// connect/disconnect, redial, drop, expiry).
type Event struct {
	// Seq is the event's position in the stream since process start;
	// gaps never occur, so consumers can detect ring overwrite by
	// comparing Seq continuity.
	Seq uint64 `json:"seq"`
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Kind names the transition ("translator_mapped", "path_connect",
	// "redial", "drop", "expiry", ...).
	Kind string `json:"kind"`
	// Node is the runtime the event happened on.
	Node string `json:"node,omitempty"`
	// Detail is free-form context (translator ID, path ID, error text).
	Detail string `json:"detail,omitempty"`
}

// Trace is a fixed-size ring buffer of Events. Recording never blocks
// and never allocates beyond the ring; old events are overwritten.
type Trace struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // ring write position
	total uint64 // events ever recorded
}

// NewTrace creates a ring holding the last n events (min 1).
func NewTrace(n int) *Trace {
	if n < 1 {
		n = 1
	}
	return &Trace{buf: make([]Event, 0, n)}
}

// Record appends an event, stamping Seq and (when zero) Time. Safe on a
// nil receiver.
func (t *Trace) Record(e Event) {
	if t == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e.Seq = t.total
	t.total++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		t.next = len(t.buf) % cap(t.buf)
		return
	}
	t.buf[t.next] = e
	t.next = (t.next + 1) % cap(t.buf)
}

// Event is shorthand for Record with the common fields.
func (t *Trace) Event(kind, node, detail string) {
	t.Record(Event{Kind: kind, Node: node, Detail: detail})
}

// Events returns the ring's contents oldest-first. Safe on a nil
// receiver (returns nil).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// Total returns how many events were ever recorded (including ones the
// ring has since overwritten).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
