package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// LogHistogram is an HDR-style log-linear histogram over non-negative
// int64 values (nanoseconds, by convention). Each power of two is split
// into 2^logSubBits linear sub-buckets, bounding the relative error of
// any reported quantile to 1/2^logSubBits (~3.1%) while covering the
// full int64 range in a fixed, small array. Recording is a single
// atomic increment — no locks, no allocation — so one histogram can be
// shared by every worker of an open-loop load generator.
//
// Unlike Histogram (fixed buckets chosen up front), LogHistogram needs
// no prior knowledge of the value range: a run whose tail collapses
// from microseconds to minutes under overload stays inside the same
// instrument with the same resolution guarantee. That is what the
// coordinated-omission-safe harness requires — the interesting values
// are precisely the ones no one predicted.
type LogHistogram struct {
	counts [numLogBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // total of recorded values (ns)
	max    atomic.Int64
}

const (
	// logSubBits is the number of linear sub-bucket bits per power of
	// two: 32 sub-buckets, ~3.1% worst-case relative error.
	logSubBits  = 5
	logSubCount = 1 << logSubBits
	// numLogBuckets covers every int64: values < logSubCount get exact
	// buckets; each further power of two adds logSubCount buckets.
	// Len64 of the largest int64 is 63, so the largest shift is
	// 63 - logSubBits - 1 = 57, and the top index is
	// (57+1)*logSubCount + logSubCount - 1.
	numLogBuckets = (57 + 2) * logSubCount
)

// NewLogHistogram returns an empty histogram.
func NewLogHistogram() *LogHistogram { return &LogHistogram{} }

// logBucketIndex maps a non-negative value to its bucket.
func logBucketIndex(v int64) int {
	u := uint64(v)
	if u < logSubCount {
		return int(u)
	}
	k := bits.Len64(u) - logSubBits - 1
	return (k+1)*logSubCount + int(u>>uint(k)) - logSubCount
}

// logBucketUpper returns the largest value mapping to bucket i. Quantile
// reports this bound, so estimates err high (conservative for SLOs),
// never low.
func logBucketUpper(i int) int64 {
	if i < logSubCount {
		return int64(i)
	}
	k := i/logSubCount - 1
	sub := i % logSubCount
	low := uint64(logSubCount+sub) << uint(k)
	return int64(low + 1<<uint(k) - 1)
}

// Record adds one value. Negative values are clamped to zero. Safe on a
// nil receiver and safe for concurrent use.
func (h *LogHistogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[logBucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// RecordDuration records a duration in nanoseconds.
func (h *LogHistogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded values; 0 on a nil receiver.
func (h *LogHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Max returns the largest recorded value (exact, not bucketed).
func (h *LogHistogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the average recorded value (0 when empty).
func (h *LogHistogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// recorded values: the bucket bound containing the ceil(q*count)-th
// smallest value, at most ~3.1% above the true order statistic. Returns
// 0 when empty. The scan is lock-free; concurrent recording can make
// the result off by the in-flight increments, which is fine for
// reporting.
func (h *LogHistogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			return logBucketUpper(i)
		}
	}
	return h.max.Load()
}

// LogSnapshot is a point-in-time summary of a LogHistogram.
type LogSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
}

// Snapshot captures the standard latency summary in one pass.
func (h *LogHistogram) Snapshot() LogSnapshot {
	if h == nil {
		return LogSnapshot{}
	}
	return LogSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}
