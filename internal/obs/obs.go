// Package obs is uMiddle's observability layer: a dependency-free
// metrics registry (atomic counters, gauges, and bounded-bucket latency
// histograms) plus a fixed-size event-trace ring buffer.
//
// The paper evaluates uMiddle entirely by externally-timed figures
// (Sections 5.1–5.3); the runtime itself was a black box. This package
// makes the bridging pipeline self-describing: the directory counts
// announce traffic and notify latency, the transport histograms
// delivery latency and queue depths, and the mappers record
// discovery-to-mapped latency per platform. Everything is exposed three
// ways — a Snapshot API through the umiddle facade, a rendered section
// in Pads, and Prometheus text + JSON trace HTTP endpoints in umiddled.
//
// All metric handles are nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, or *Trace are no-ops, and a nil *Registry hands out nil
// handles, so instrumented code never needs to branch on whether
// observability is wired up.
package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches dimensions to a metric series ("node", "path",
// "platform", ...). Series identity is the metric name plus the sorted
// label set.
type Labels map[string]string

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depths, population
// sizes).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease). Safe on a nil
// receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// kind discriminates metric families for exposition.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

// series is one registered metric instance.
type series struct {
	name   string
	labels Labels
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds a process's (or node's) metric series and its event
// trace. All methods are safe for concurrent use; getters are
// get-or-create, so instrumented code and exposition code never race on
// registration order.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series // key: name + canonical label suffix
	help   map[string]string  // metric family name -> HELP text
	trace  *Trace
}

// DefaultTraceDepth is the event-ring capacity of NewRegistry.
const DefaultTraceDepth = 512

// NewRegistry creates an empty registry with a DefaultTraceDepth event
// ring.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*series),
		help:   make(map[string]string),
		trace:  NewTrace(DefaultTraceDepth),
	}
}

// Describe sets the HELP text rendered for a metric family. Optional.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// Trace returns the registry's event ring; nil on a nil registry.
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// seriesKey renders the canonical identity of a series.
func seriesKey(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + labelString(labels) + "}"
}

// labelString renders labels as sorted k="v" pairs, comma-separated —
// also the Prometheus exposition syntax.
func labelString(labels Labels) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(labels[k]))
	}
	return sb.String()
}

// cloneLabels defends against the caller mutating the map afterwards.
func cloneLabels(labels Labels) Labels {
	if len(labels) == 0 {
		return nil
	}
	out := make(Labels, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// Counter returns the counter series for name+labels, creating it if
// new. A nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		return s.counter
	}
	s := &series{name: name, labels: cloneLabels(labels), kind: counterKind, counter: &Counter{}}
	r.series[key] = s
	return s.counter
}

// Gauge returns the gauge series for name+labels, creating it if new.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		return s.gauge
	}
	s := &series{name: name, labels: cloneLabels(labels), kind: gaugeKind, gauge: &Gauge{}}
	r.series[key] = s
	return s.gauge
}

// Histogram returns the histogram series for name+labels, creating it
// with the given bucket upper bounds if new (LatencyBuckets when bounds
// is nil). Bounds are fixed at creation; later calls reuse the first.
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		return s.hist
	}
	s := &series{name: name, labels: cloneLabels(labels), kind: histogramKind, hist: newHistogram(bounds)}
	r.series[key] = s
	return s.hist
}

// RemoveSeries drops one series (e.g. per-path metrics when the path is
// disconnected) so long-lived registries are not grown without bound by
// ephemeral label values.
func (r *Registry) RemoveSeries(name string, labels Labels) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.series, seriesKey(name, labels))
}

// CounterSnapshot is one counter series' state.
type CounterSnapshot struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	Value  uint64 `json:"value"`
}

// GaugeSnapshot is one gauge series' state.
type GaugeSnapshot struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// HistogramSeriesSnapshot is one histogram series' state.
type HistogramSeriesSnapshot struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	HistogramSnapshot
}

// Snapshot is a point-in-time copy of every series plus the trace ring,
// each section sorted by (name, labels) for deterministic rendering.
type Snapshot struct {
	Counters   []CounterSnapshot         `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot           `json:"gauges,omitempty"`
	Histograms []HistogramSeriesSnapshot `json:"histograms,omitempty"`
	Events     []Event                   `json:"events,omitempty"`
}

// Snapshot captures the registry. Safe on a nil registry (zero value).
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return labelString(all[i].labels) < labelString(all[j].labels)
	})
	for _, s := range all {
		switch s.kind {
		case counterKind:
			snap.Counters = append(snap.Counters, CounterSnapshot{
				Name: s.name, Labels: cloneLabels(s.labels), Value: s.counter.Value(),
			})
		case gaugeKind:
			snap.Gauges = append(snap.Gauges, GaugeSnapshot{
				Name: s.name, Labels: cloneLabels(s.labels), Value: s.gauge.Value(),
			})
		case histogramKind:
			snap.Histograms = append(snap.Histograms, HistogramSeriesSnapshot{
				Name: s.name, Labels: cloneLabels(s.labels), HistogramSnapshot: s.hist.Snapshot(),
			})
		}
	}
	snap.Events = r.trace.Events()
	return snap
}
