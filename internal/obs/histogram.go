package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bucket layout for latency histograms:
// 100µs to 10s in roughly 1-2.5-5 steps, matching the range between
// in-process notify costs and the transport's delivery timeout.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic observation — the
// cumulative-bucket model of Prometheus, bounded in memory by
// construction. Observations above the last bound land in the implicit
// +Inf bucket.
type Histogram struct {
	bounds []float64       // ascending upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// newHistogram builds a histogram; nil bounds selects LatencyBuckets.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds. Safe on a nil
// receiver.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values; 0 on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bucket is one cumulative histogram bucket: observations <= UpperBound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets are
// cumulative and end with the +Inf bucket (UpperBound = +Inf).
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear assumption
// inside the winning bucket's upper bound — the usual fixed-bucket
// estimate. Returns 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	rank := q * float64(s.Count)
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			return b.UpperBound
		}
	}
	return math.Inf(1)
}

// Snapshot captures the histogram. Counts are read bucket-by-bucket
// without a global lock, so a snapshot taken during heavy observation
// may be off by in-flight increments — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Buckets: make([]Bucket, 0, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		snap.Buckets = append(snap.Buckets, Bucket{UpperBound: ub, Count: cum})
	}
	return snap
}
