package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one TYPE line per metric family,
// series grouped under it, histograms expanded into cumulative _bucket
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()

	// Group series by family name so each family gets a single
	// HELP/TYPE header, as the format requires.
	type famSeries struct {
		labels   Labels
		kind     kind
		counterV uint64
		gaugeV   int64
		hist     HistogramSnapshot
	}
	families := make(map[string][]famSeries)
	var names []string
	add := func(name string, fs famSeries) {
		if _, ok := families[name]; !ok {
			names = append(names, name)
		}
		families[name] = append(families[name], fs)
	}
	for _, c := range snap.Counters {
		add(c.Name, famSeries{labels: c.Labels, kind: counterKind, counterV: c.Value})
	}
	for _, g := range snap.Gauges {
		add(g.Name, famSeries{labels: g.Labels, kind: gaugeKind, gaugeV: g.Value})
	}
	for _, h := range snap.Histograms {
		add(h.Name, famSeries{labels: h.Labels, kind: histogramKind, hist: h.HistogramSnapshot})
	}
	sort.Strings(names)

	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	for _, name := range names {
		list := families[name]
		if h, ok := help[name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typeName(list[0].kind)); err != nil {
			return err
		}
		for _, s := range list {
			var err error
			switch s.kind {
			case counterKind:
				_, err = fmt.Fprintf(w, "%s %d\n", seriesKey(name, s.labels), s.counterV)
			case gaugeKind:
				_, err = fmt.Fprintf(w, "%s %d\n", seriesKey(name, s.labels), s.gaugeV)
			case histogramKind:
				err = writeHistogram(w, name, s.labels, s.hist)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func typeName(k kind) string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

func writeHistogram(w io.Writer, name string, labels Labels, h HistogramSnapshot) error {
	for _, b := range h.Buckets {
		le := formatFloat(b.UpperBound)
		withLe := cloneLabels(labels)
		if withLe == nil {
			withLe = Labels{}
		}
		withLe["le"] = le
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesKey(name+"_bucket", withLe), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", seriesKey(name+"_sum", labels), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesKey(name+"_count", labels), h.Count)
	return err
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
