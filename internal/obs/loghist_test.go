package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// oracleQuantile is the brute-force order statistic: the ceil(q*n)-th
// smallest recorded value.
func oracleQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkQuantiles asserts the histogram's quantile is a tight upper
// bound on the oracle's: never below it, and within the log-linear
// resolution guarantee (1/32 relative error) above it.
func checkQuantiles(t *testing.T, h *LogHistogram, values []int64) {
	t.Helper()
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0} {
		want := oracleQuantile(sorted, q)
		got := h.Quantile(q)
		if got < want {
			t.Fatalf("q=%v: histogram %d below oracle %d", q, got, want)
		}
		slack := want/16 + 1
		if got > want+slack {
			t.Fatalf("q=%v: histogram %d exceeds oracle %d by more than %d", q, got, want, slack)
		}
	}
}

func TestLogHistogramBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	probe := func(v int64) {
		i := logBucketIndex(v)
		if up := logBucketUpper(i); up < v {
			t.Fatalf("v=%d: bucket %d upper bound %d below value", v, i, up)
		}
		if i > 0 {
			if below := logBucketUpper(i - 1); below >= v {
				t.Fatalf("v=%d: previous bucket %d upper bound %d not below value", v, i-1, below)
			}
		}
		if back := logBucketIndex(logBucketUpper(i)); back != i {
			t.Fatalf("v=%d: upper bound of bucket %d maps to bucket %d", v, i, back)
		}
	}
	for v := int64(0); v < 4096; v++ {
		probe(v)
	}
	for i := 0; i < 100000; i++ {
		probe(rng.Int63())
	}
	probe(math.MaxInt64)
}

func TestLogHistogramQuantileMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := NewLogHistogram()
		n := 100 + rng.Intn(5000)
		values := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			var v int64
			switch rng.Intn(4) {
			case 0: // small exact range
				v = int64(rng.Intn(64))
			case 1: // microsecond-scale latencies
				v = int64(rng.ExpFloat64() * 50e3)
			case 2: // heavy tail up to minutes
				v = int64(math.Pow(10, 3+rng.Float64()*7))
			default: // power-of-two edges
				v = int64(1) << uint(rng.Intn(40))
				if rng.Intn(2) == 0 {
					v--
				}
			}
			values = append(values, v)
			h.Record(v)
		}
		if h.Count() != uint64(n) {
			t.Fatalf("count = %d, want %d", h.Count(), n)
		}
		checkQuantiles(t, h, values)
	}
}

// TestLogHistogramCoordinatedOmissionGuard is the open-loop correctness
// property: latencies are measured from each request's *intended* start
// on a fixed arrival schedule, so a stalled consumer inflates the tail
// of every arrival that queued behind the stall. A closed-loop recorder
// (per-request service time, schedule re-anchored after each response)
// reports a near-flat tail for the same run — the lie this harness
// exists to avoid. The histogram's p99 must match the brute-force
// oracle over the intended-start latencies, and dwarf the closed-loop
// number.
func TestLogHistogramCoordinatedOmissionGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		interval := time.Duration(200+rng.Intn(2000)) * time.Microsecond
		n := 2000 + rng.Intn(3000)
		stallAt := n/4 + rng.Intn(n/2)
		stall := time.Duration(100+rng.Intn(400)) * time.Millisecond
		service := interval / 4 // consumer keeps up when not stalled

		open := NewLogHistogram()
		closed := NewLogHistogram()
		var openOracle []int64

		// Simulated clock: arrivals on the intended schedule; the
		// consumer finishes each no earlier than (a) its arrival plus
		// service, (b) the previous completion plus service, and (c)
		// the stall end for arrivals caught behind it.
		var prevDone time.Duration
		for i := 0; i < n; i++ {
			intended := time.Duration(i) * interval
			start := intended
			if start < prevDone {
				start = prevDone
			}
			if i >= stallAt && intended < time.Duration(stallAt)*interval+stall {
				if end := time.Duration(stallAt)*interval + stall; start < end {
					start = end
				}
			}
			done := start + service
			prevDone = done
			lat := int64(done - intended)
			open.Record(lat)
			openOracle = append(openOracle, lat)
			closed.Record(int64(done - start)) // the closed-loop lie
		}

		checkQuantiles(t, open, openOracle)
		if p := open.Quantile(0.99); p < int64(stall)/4 {
			t.Fatalf("open-loop p99 %v does not reflect the %v stall", time.Duration(p), stall)
		}
		if op, cp := open.Quantile(0.99), closed.Quantile(0.99); op < 10*cp {
			t.Fatalf("open-loop p99 %v not >> closed-loop p99 %v", time.Duration(op), time.Duration(cp))
		}
	}
}

func TestLogHistogramEdges(t *testing.T) {
	var nilH *LogHistogram
	nilH.Record(5) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Fatal("nil histogram must read as empty")
	}
	h := NewLogHistogram()
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Record(-50) // clamps to zero
	if got := h.Quantile(1.0); got != 0 {
		t.Fatalf("negative value should clamp to 0, got %d", got)
	}
	h.Record(math.MaxInt64)
	if got := h.Max(); got != math.MaxInt64 {
		t.Fatalf("max = %d", got)
	}
	if got := h.Quantile(1.0); got < math.MaxInt64/32*31 {
		t.Fatalf("p100 = %d, want near MaxInt64", got)
	}
	s := h.Snapshot()
	if s.Count != 2 || s.Max != math.MaxInt64 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestLogHistogramConcurrentRecord(t *testing.T) {
	h := NewLogHistogram()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.RecordDuration(time.Duration(rng.Intn(1e6)))
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}
