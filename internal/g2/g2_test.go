package g2

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/runtime"
	"repro/internal/transport"
)

func newTestRuntime(t *testing.T) *runtime.Runtime {
	t.Helper()
	rt, err := runtime.New(runtime.Config{
		Node:      "g2-node",
		Directory: directory.Options{AnnounceInterval: 20 * time.Millisecond},
		Transport: transport.Options{DeliverTimeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatalf("runtime.New: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

// gadgetDef builds and registers a test gadget.
func gadgetDef(t *testing.T, rt *runtime.Runtime, name string, ports ...core.Port) *core.Base {
	t.Helper()
	tr := core.MustBase(core.Profile{
		ID:       core.MakeTranslatorID(rt.Node(), "umiddle", name),
		Name:     name,
		Platform: "umiddle",
		Node:     rt.Node(),
		Shape:    core.MustShape(ports...),
	})
	if err := rt.Register(tr); err != nil {
		t.Fatalf("Register: %v", err)
	}
	return tr
}

func cameraPorts() []core.Port {
	return []core.Port{
		{Name: "image-out", Kind: core.Digital, Direction: core.Output, Type: "image/jpeg"},
		{Name: "capture", Kind: core.Digital, Direction: core.Input, Type: "control/trigger"},
	}
}

func playerPorts() []core.Port {
	return []core.Port{
		{Name: "image-in", Kind: core.Digital, Direction: core.Input, Type: "image/jpeg"},
		{Name: "screen", Kind: core.Physical, Direction: core.Output, Type: "visible/screen"},
	}
}

func storagePorts() []core.Port {
	return []core.Port{
		{Name: "media-in", Kind: core.Digital, Direction: core.Input, Type: "image/jpeg"},
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		name  string
		ports []core.Port
		attrs map[string]string
		want  Role
	}{
		{"camera", cameraPorts(), nil, RoleCapture},
		{"player", playerPorts(), nil, RolePlayer},
		{"storage", storagePorts(), nil, RoleStorage},
		{"other", []core.Port{{Name: "x", Kind: core.Digital, Direction: core.Input, Type: "text/plain"}}, nil, RoleOther},
		{"override", cameraPorts(), map[string]string{"g2.role": "storage"}, RoleStorage},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := core.Profile{
				ID: "x", Platform: "umiddle", Node: "n",
				Shape:      core.MustShape(tt.ports...),
				Attributes: tt.attrs,
			}
			if got := Classify(p); got != tt.want {
				t.Fatalf("Classify = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRoleString(t *testing.T) {
	for _, r := range []Role{RoleCapture, RolePlayer, RoleStorage, RoleOther} {
		if r.String() == "" || r.String()[0] == 'R' {
			t.Errorf("Role %d has bad name %q", int(r), r.String())
		}
	}
	if Role(99).String() != "Role(99)" {
		t.Error("unknown role name")
	}
}

func TestPointDistance(t *testing.T) {
	if d := (Point{0, 0}).Distance(Point{3, 4}); d != 5 {
		t.Fatalf("distance = %f", d)
	}
}

func TestGeoplayOnCoLocation(t *testing.T) {
	rt := newTestRuntime(t)
	camera := gadgetDef(t, rt, "camera", cameraPorts()...)
	player := gadgetDef(t, rt, "player", playerPorts()...)
	received := make(chan core.Message, 8)
	player.MustHandle("image-in", func(_ context.Context, msg core.Message) error {
		received <- msg
		return nil
	})
	// The camera answers pokes on its capture port by emitting.
	camera.MustHandle("capture", func(context.Context, core.Message) error {
		camera.Emit("image-out", core.NewMessage("image/jpeg", []byte("snap")))
		return nil
	})

	space := NewSpace(rt, 5)
	var mu sync.Mutex
	var events []Event
	space.OnEvent(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, e)
	})

	if err := space.Place(camera.ID(), Point{0, 0}); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if err := space.Place(player.ID(), Point{100, 100}); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if space.Links() != 0 {
		t.Fatal("composition before co-location")
	}

	// Move the player next to the camera: geoplay fires and the poke
	// causes an actual image to flow.
	if err := space.Move(player.ID(), Point{1, 1}); err != nil {
		t.Fatalf("Move: %v", err)
	}
	select {
	case msg := <-received:
		if string(msg.Payload) != "snap" {
			t.Fatalf("payload = %q", msg.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("geoplay never delivered an image")
	}
	mu.Lock()
	if len(events) == 0 || events[0].Kind != EventGeoplay {
		t.Fatalf("events = %v", events)
	}
	mu.Unlock()

	// Moving apart tears the composition down.
	if err := space.Move(player.ID(), Point{100, 100}); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if space.Links() != 0 {
		t.Fatal("composition survived separation")
	}
	mu.Lock()
	last := events[len(events)-1]
	mu.Unlock()
	if last.Kind != EventSeparated {
		t.Fatalf("last event = %v", last)
	}
}

func TestGeostoreKind(t *testing.T) {
	rt := newTestRuntime(t)
	camera := gadgetDef(t, rt, "camera", cameraPorts()...)
	camera.MustHandle("capture", func(context.Context, core.Message) error { return nil })
	storeProfile := core.Profile{
		ID:       core.MakeTranslatorID(rt.Node(), "umiddle", "store"),
		Name:     "store",
		Platform: "umiddle",
		Node:     rt.Node(),
		Shape:    core.MustShape(storagePorts()...),
	}
	store := core.MustBase(storeProfile)
	store.MustHandle("media-in", func(context.Context, core.Message) error { return nil })
	if err := rt.Register(store); err != nil {
		t.Fatalf("Register: %v", err)
	}

	space := NewSpace(rt, 5)
	events := make(chan Event, 8)
	space.OnEvent(func(e Event) { events <- e })
	space.Place(camera.ID(), Point{0, 0})
	space.Place(store.ID(), Point{1, 1})
	select {
	case e := <-events:
		if e.Kind != EventGeostore {
			t.Fatalf("kind = %v, want geostore", e.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no composition event")
	}
}

func TestRemoveTearsDown(t *testing.T) {
	rt := newTestRuntime(t)
	camera := gadgetDef(t, rt, "camera", cameraPorts()...)
	camera.MustHandle("capture", func(context.Context, core.Message) error { return nil })
	player := gadgetDef(t, rt, "player", playerPorts()...)
	player.MustHandle("image-in", func(context.Context, core.Message) error { return nil })

	space := NewSpace(rt, 5)
	space.Place(camera.ID(), Point{0, 0})
	space.Place(player.ID(), Point{1, 1})
	if space.Links() != 1 {
		t.Fatalf("links = %d", space.Links())
	}
	space.Remove(camera.ID())
	if space.Links() != 0 {
		t.Fatal("links survived removal")
	}
	if got := len(space.Gadgets()); got != 1 {
		t.Fatalf("gadgets = %d", got)
	}
}

func TestPlaceUnknownGadget(t *testing.T) {
	rt := newTestRuntime(t)
	space := NewSpace(rt, 5)
	if err := space.Place("ghost", Point{}); err == nil {
		t.Fatal("placing unknown gadget succeeded")
	}
	if err := space.Move("ghost", Point{}); err == nil {
		t.Fatal("moving unplaced gadget succeeded")
	}
}

func TestIncompatibleGadgetsNoComposition(t *testing.T) {
	rt := newTestRuntime(t)
	camera := gadgetDef(t, rt, "camera", cameraPorts()...)
	// A printer that only accepts PostScript: media types don't match.
	printer := gadgetDef(t, rt, "printer",
		core.Port{Name: "doc-in", Kind: core.Digital, Direction: core.Input, Type: "text/ps"},
		core.Port{Name: "paper", Kind: core.Physical, Direction: core.Output, Type: "visible/paper"})
	_ = printer

	space := NewSpace(rt, 5)
	space.Place(camera.ID(), Point{0, 0})
	space.Place(printer.ID(), Point{1, 1})
	if space.Links() != 0 {
		t.Fatal("incompatible gadgets composed")
	}
}
