// Package g2 implements the engine behind G2 UI, the paper's
// "Geographical User Interface" (Section 4.2): gadgets — media storage,
// player, and capture devices — are registered at coordinates in a
// geographical space, and co-location of devices triggers *geoplay*
// (playback of media from a co-located storage or capture device on a
// player) or *geostore* (a storage device storing data from a co-located
// capture device). Because the engine is built on the common semantic
// space, the compositions work across platforms — the paper's example
// co-locates a Bluetooth camera with a UPnP MediaRenderer TV.
package g2

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// Role classifies a gadget by its shape.
type Role int

// Gadget roles.
const (
	// RoleCapture produces media (camera: digital media output).
	RoleCapture Role = iota + 1
	// RolePlayer renders media (TV: digital media input + physical
	// output).
	RolePlayer
	// RoleStorage stores media (digital media input, no physical
	// output; may also replay through a media output).
	RoleStorage
	// RoleOther takes no part in geoplay/geostore.
	RoleOther
)

// String renders the role name.
func (r Role) String() string {
	switch r {
	case RoleCapture:
		return "capture"
	case RolePlayer:
		return "player"
	case RoleStorage:
		return "storage"
	case RoleOther:
		return "other"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// mediaMajors are the payload classes G2 treats as media.
var mediaMajors = map[string]bool{"image": true, "audio": true, "video": true}

func isMediaType(t core.DataType) bool {
	major, _ := t.Split()
	return mediaMajors[strings.ToLower(major)]
}

// Classify infers a gadget's role from its shape. An explicit
// "g2.role" profile attribute overrides the inference.
func Classify(p core.Profile) Role {
	switch p.Attr("g2.role") {
	case "capture":
		return RoleCapture
	case "player":
		return RolePlayer
	case "storage":
		return RoleStorage
	}
	var mediaOut, mediaIn, physOut bool
	for _, port := range p.Shape.Ports() {
		switch {
		case port.Kind == core.Digital && port.Direction == core.Output && isMediaType(port.Type):
			mediaOut = true
		case port.Kind == core.Digital && port.Direction == core.Input && isMediaType(port.Type):
			mediaIn = true
		case port.Kind == core.Physical && port.Direction == core.Output:
			physOut = true
		}
	}
	switch {
	case mediaIn && physOut:
		return RolePlayer
	case mediaIn:
		return RoleStorage
	case mediaOut:
		return RoleCapture
	default:
		return RoleOther
	}
}

// Point is a position in the geographic coordinate system.
type Point struct{ X, Y float64 }

// Distance returns the Euclidean distance to another point.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// EventKind labels a space event.
type EventKind string

// Space events.
const (
	// EventGeoplay fires when a composition for playback is established.
	EventGeoplay EventKind = "geoplay"
	// EventGeostore fires when a capture-to-storage composition is
	// established.
	EventGeostore EventKind = "geostore"
	// EventSeparated fires when co-located gadgets move apart and their
	// compositions are torn down.
	EventSeparated EventKind = "separated"
)

// Event describes one composition change.
type Event struct {
	Kind EventKind
	Src  core.TranslatorID
	Dst  core.TranslatorID
	Path transport.PathID
}

// EventFunc receives space events.
type EventFunc func(Event)

// gadget is one placed device.
type gadget struct {
	profile core.Profile
	role    Role
	pos     Point
}

type pairKey struct{ a, b core.TranslatorID }

func makePairKey(x, y core.TranslatorID) pairKey {
	if x > y {
		x, y = y, x
	}
	return pairKey{a: x, b: y}
}

// Space is a G2 coordinate space bound to a uMiddle runtime.
type Space struct {
	rt     *runtime.Runtime
	radius float64

	mu      sync.Mutex
	gadgets map[core.TranslatorID]*gadget
	links   map[pairKey][]transport.PathID
	events  []EventFunc
	trigger *core.Base
}

// NewSpace creates a space with the given co-location radius.
func NewSpace(rt *runtime.Runtime, radius float64) *Space {
	return &Space{
		rt:      rt,
		radius:  radius,
		gadgets: make(map[core.TranslatorID]*gadget),
		links:   make(map[pairKey][]transport.PathID),
	}
}

// OnEvent registers an event callback.
func (s *Space) OnEvent(fn EventFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, fn)
}

func (s *Space) emit(e Event) {
	s.mu.Lock()
	fns := append([]EventFunc(nil), s.events...)
	s.mu.Unlock()
	for _, fn := range fns {
		fn(e)
	}
}

// Place registers a gadget at a position. The translator must be
// visible in the runtime's directory.
func (s *Space) Place(id core.TranslatorID, pos Point) error {
	profile, err := s.rt.Directory().Resolve(id)
	if err != nil {
		return fmt.Errorf("g2: %w", err)
	}
	s.mu.Lock()
	s.gadgets[id] = &gadget{profile: profile, role: Classify(profile), pos: pos}
	s.mu.Unlock()
	s.recompose(id)
	return nil
}

// Move repositions a gadget, recomputing co-locations.
func (s *Space) Move(id core.TranslatorID, pos Point) error {
	s.mu.Lock()
	g, ok := s.gadgets[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("g2: gadget %q not placed", id)
	}
	g.pos = pos
	s.mu.Unlock()
	s.recompose(id)
	return nil
}

// Remove takes a gadget off the map, tearing down its compositions.
func (s *Space) Remove(id core.TranslatorID) {
	s.mu.Lock()
	delete(s.gadgets, id)
	var torn []pairKey
	for key := range s.links {
		if key.a == id || key.b == id {
			torn = append(torn, key)
		}
	}
	s.mu.Unlock()
	for _, key := range torn {
		s.teardown(key)
	}
}

// Gadgets returns the placed gadgets sorted by ID.
type PlacedGadget struct {
	Profile core.Profile
	Role    Role
	Pos     Point
}

// Gadgets lists placements.
func (s *Space) Gadgets() []PlacedGadget {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PlacedGadget, 0, len(s.gadgets))
	for _, g := range s.gadgets {
		out = append(out, PlacedGadget{Profile: g.profile.Clone(), Role: g.role, Pos: g.pos})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Profile.ID < out[j].Profile.ID })
	return out
}

// recompose re-evaluates the moved gadget against every other gadget.
func (s *Space) recompose(id core.TranslatorID) {
	s.mu.Lock()
	moved, ok := s.gadgets[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	type pairState struct {
		key    pairKey
		other  *gadget
		close  bool
		linked bool
	}
	var pairs []pairState
	for otherID, other := range s.gadgets {
		if otherID == id {
			continue
		}
		key := makePairKey(id, otherID)
		_, linked := s.links[key]
		pairs = append(pairs, pairState{
			key:    key,
			other:  other,
			close:  moved.pos.Distance(other.pos) <= s.radius,
			linked: linked,
		})
	}
	movedCopy := *moved
	s.mu.Unlock()

	for _, p := range pairs {
		switch {
		case p.close && !p.linked:
			s.compose(&movedCopy, p.other, p.key)
		case !p.close && p.linked:
			s.teardown(p.key)
		}
	}
}

// compose establishes every applicable composition for a newly
// co-located pair.
func (s *Space) compose(a, b *gadget, key pairKey) {
	var paths []transport.PathID
	connect := func(src, dst *gadget) {
		srcPort, dstPort, ok := mediaPath(src.profile, dst.profile)
		if !ok {
			return
		}
		id, err := s.rt.Connect(srcPort, dstPort)
		if err != nil {
			return
		}
		paths = append(paths, id)
		kind := EventGeoplay
		if dst.role == RoleStorage {
			kind = EventGeostore
		}
		s.emit(Event{Kind: kind, Src: src.profile.ID, Dst: dst.profile.ID, Path: id})
		s.poke(src.profile)
	}
	connect(a, b)
	connect(b, a)
	if len(paths) == 0 {
		return
	}
	s.mu.Lock()
	s.links[key] = paths
	s.mu.Unlock()
}

// mediaPath finds a compatible media output->input port pair.
func mediaPath(src, dst core.Profile) (core.PortRef, core.PortRef, bool) {
	for _, out := range src.Shape.Outputs(core.Digital) {
		if !isMediaType(out.Type) {
			continue
		}
		for _, in := range dst.Shape.Inputs(core.Digital) {
			if core.Compatible(out.Type, in.Type) {
				return core.PortRef{Translator: src.ID, Port: out.Name},
					core.PortRef{Translator: dst.ID, Port: in.Name}, true
			}
		}
	}
	return core.PortRef{}, core.PortRef{}, false
}

// poke triggers acquisition on a source gadget: if it has a control
// input port ("control/*" family: the camera's shutter, a storage
// device's replay trigger), a trigger message is delivered so the
// geoplay actually plays. Failures are ignored — not every source needs
// poking (streams flow on their own).
func (s *Space) poke(src core.Profile) {
	for _, port := range src.Shape.Inputs(core.Digital) {
		major, _ := port.Type.Split()
		if !strings.EqualFold(major, "control") {
			continue
		}
		dst := core.PortRef{Translator: src.ID, Port: port.Name}
		if tr, ok := s.rt.Directory().Local(src.ID); ok {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			go func() {
				defer cancel()
				tr.Deliver(ctx, dst.Port, core.Message{Type: port.Type}) //nolint:errcheck
			}()
		} else {
			// Remote gadget: route the trigger through a transient path
			// from the space's trigger service.
			go s.remotePoke(dst, port.Type)
		}
		return
	}
}

// remotePoke delivers a trigger to a remote gadget through a one-shot
// message path from the space's trigger service — the transport module
// forwards the delivery to the gadget's hosting node.
func (s *Space) remotePoke(dst core.PortRef, t core.DataType) {
	src := s.ensureTrigger()
	if src == nil {
		return
	}
	id, err := s.rt.Connect(core.PortRef{Translator: src.Profile().ID, Port: "out"}, dst)
	if err != nil {
		return
	}
	src.Emit("out", core.Message{Type: t})
	// Leave the path up until the buffered trigger drains, then tear it
	// down.
	go func() {
		defer s.rt.Disconnect(id) //nolint:errcheck
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			stats, ok := s.rt.Transport().PathStats(id)
			if !ok || stats.Delivered+stats.Errors >= 1 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
}

// ensureTrigger lazily registers the space's trigger service.
func (s *Space) ensureTrigger() *core.Base {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.trigger != nil {
		return s.trigger
	}
	tr := core.MustBase(core.Profile{
		ID:       core.MakeTranslatorID(s.rt.Node(), "umiddle", "g2-trigger"),
		Name:     "G2 trigger",
		Platform: "umiddle",
		Node:     s.rt.Node(),
		Shape: core.MustShape(
			core.Port{Name: "out", Kind: core.Digital, Direction: core.Output, Type: "control/*"},
		),
	})
	if err := s.rt.Register(tr); err != nil {
		return nil
	}
	s.trigger = tr
	return tr
}

// teardown removes a pair's compositions.
func (s *Space) teardown(key pairKey) {
	s.mu.Lock()
	paths := s.links[key]
	delete(s.links, key)
	s.mu.Unlock()
	for _, id := range paths {
		s.rt.Disconnect(id) //nolint:errcheck // path may already be gone
	}
	if len(paths) > 0 {
		s.emit(Event{Kind: EventSeparated, Src: key.a, Dst: key.b})
	}
}

// Links returns the number of active co-location compositions.
func (s *Space) Links() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.links)
}
