package integration

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/netemu"
	"repro/internal/qos"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// addRuntimeOpts is addRuntime with explicit directory and transport
// tuning, for fault-tolerance scenarios that need specific retry
// budgets or announce cadences.
func (w *world) addRuntimeOpts(name string, dopts directory.Options, topts transport.Options) *runtime.Runtime {
	w.t.Helper()
	rt, err := runtime.New(runtime.Config{
		Node:      name,
		Host:      w.net.MustAddHost(name),
		Directory: dopts,
		Transport: topts,
	})
	if err != nil {
		w.t.Fatalf("runtime.New(%s): %v", name, err)
	}
	if err := rt.Start(); err != nil {
		w.t.Fatalf("runtime.Start(%s): %v", name, err)
	}
	w.t.Cleanup(func() { rt.Close() })
	return rt
}

// TestPeerDropReconnectsAndResumesDelivery: a severed peer connection
// is re-established by the redial cycle and delivery resumes; a burst
// of injected write errors is ridden out by per-message retries. The
// path's stats reflect the recovery: Redials for the re-established
// connection, Retries for the reattempted deliveries.
func TestPeerDropReconnectsAndResumesDelivery(t *testing.T) {
	w := newWorld(t)
	fast := qos.RetryPolicy{MaxAttempts: 8, BaseDelay: 20 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Multiplier: 2, NoJitter: true}
	topts := transport.Options{
		DeliverTimeout: 5 * time.Second,
		DialTimeout:    2 * time.Second,
		Retry:          fast,
		Redial:         fast,
	}
	dopts := directory.Options{AnnounceInterval: 30 * time.Millisecond}
	h1 := w.addRuntimeOpts("h1", dopts, topts)
	h2 := w.addRuntimeOpts("h2", dopts, topts)

	src := trigger("h1", "src", "text/plain")
	dst := newCollector("h2", "dst", "text/plain")
	if err := h1.Register(src); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := h2.Register(dst); err != nil {
		t.Fatalf("Register: %v", err)
	}
	w.waitLookup(h1, core.Query{NameContains: "dst"}, 1)

	id, err := h1.Connect(ref(src, "out"), ref(dst, "in"))
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}

	src.Emit("out", core.NewMessage("text/plain", []byte("before")))
	if got := dst.wait(t, 5*time.Second); string(got.Payload) != "before" {
		t.Fatalf("payload = %q", got.Payload)
	}

	// Sever the established peer connections (TCP-reset analogue). The
	// transport must redial with backoff and resume delivery.
	if n := w.net.DropConnections("h1", "h2"); n == 0 {
		t.Fatal("no connections to drop — transport never connected?")
	}
	src.Emit("out", core.NewMessage("text/plain", []byte("after-drop")))
	if got := dst.wait(t, 5*time.Second); string(got.Payload) != "after-drop" {
		t.Fatalf("payload = %q", got.Payload)
	}

	// Inject a short burst of write errors: the first delivery attempts
	// fail, retries with backoff succeed once the fault clears.
	w.net.SetFault("h1", "h2", netemu.Fault{ErrorRate: 1})
	src.Emit("out", core.NewMessage("text/plain", []byte("through-fault")))
	time.Sleep(60 * time.Millisecond)
	w.net.ClearFault("h1", "h2")
	if got := dst.wait(t, 5*time.Second); string(got.Payload) != "through-fault" {
		t.Fatalf("payload = %q", got.Payload)
	}

	stats, ok := h1.Transport().PathStats(id)
	if !ok {
		t.Fatal("path stats missing")
	}
	if stats.Delivered != 3 {
		t.Fatalf("Delivered = %d, want 3", stats.Delivered)
	}
	if stats.Redials == 0 {
		t.Fatalf("Redials = 0, want >= 1 after a dropped connection: %+v", stats)
	}
	if stats.Retries == 0 {
		t.Fatalf("Retries = 0, want >= 1 after injected write errors: %+v", stats)
	}
	if stats.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0 (everything eventually arrived)", stats.Dropped)
	}
}

// TestDeadDestinationDroppedWithoutStalling: a dynamic path bound to a
// live destination and a permanently partitioned one keeps serving the
// live destination; messages for the dead one are abandoned after the
// bounded retry budget and counted in PathStats.Dropped.
func TestDeadDestinationDroppedWithoutStalling(t *testing.T) {
	w := newWorld(t)
	tight := qos.RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Multiplier: 2, NoJitter: true}
	topts := transport.Options{
		DeliverTimeout: 5 * time.Second,
		DialTimeout:    300 * time.Millisecond,
		Retry:          tight,
		Redial:         tight,
	}
	// Slow announce cadence so the partitioned node's binding survives
	// (TTL = 4 * interval) long enough to observe the bounded drops.
	dopts := directory.Options{AnnounceInterval: 500 * time.Millisecond}
	h1 := w.addRuntimeOpts("h1", dopts, topts)
	h2 := w.addRuntimeOpts("h2", dopts, topts)
	h3 := w.addRuntimeOpts("h3", dopts, topts)

	src := trigger("h1", "src", "text/plain")
	live := newCollector("h2", "live-sink", "text/plain")
	dead := newCollector("h3", "dead-sink", "text/plain")
	if err := h1.Register(src); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := h2.Register(live); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := h3.Register(dead); err != nil {
		t.Fatalf("Register: %v", err)
	}
	w.waitLookup(h1, core.Query{NameContains: "sink"}, 2)

	id, err := h1.ConnectQuery(ref(src, "out"), core.QueryAccepting("text/plain", ""))
	if err != nil {
		t.Fatalf("ConnectQuery: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, _ := h1.Transport().PathStats(id)
		if stats.Bound == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dynamic path never bound both sinks")
		}
		time.Sleep(15 * time.Millisecond)
	}

	// h3 goes dark for good.
	w.net.Partition("h1", "h3")

	const count = 3
	start := time.Now()
	for i := 0; i < count; i++ {
		src.Emit("out", core.NewMessage("text/plain", []byte("m")))
	}
	for i := 0; i < count; i++ {
		live.wait(t, 5*time.Second)
	}
	elapsed := time.Since(start)

	// The live destination got everything; the dead one burned its
	// bounded budget per message without stalling the path. Budget per
	// message: 2 delivery attempts x (2 dials x 300ms + backoff) — well
	// under 2s each even in the worst case.
	if elapsed > 8*time.Second {
		t.Fatalf("live deliveries took %v — dead destination stalled the path", elapsed)
	}
	stats, _ := h1.Transport().PathStats(id)
	if stats.Delivered < count {
		t.Fatalf("Delivered = %d, want >= %d (live destination)", stats.Delivered, count)
	}
	if stats.Dropped == 0 {
		t.Fatalf("Dropped = 0, want >= 1 for the partitioned destination: %+v", stats)
	}
	if stats.Errors == 0 {
		t.Fatalf("Errors = 0, want >= 1: %+v", stats)
	}

	// Eventually the directory expires the dead node and the path
	// unbinds it entirely.
	deadline = time.Now().Add(8 * time.Second)
	for {
		stats, _ := h1.Transport().PathStats(id)
		if stats.Bound == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead destination never unbound: %+v", stats)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestPartitionHealRebindsPromptly: after a partition heals, the
// reconnecting transport triggers an immediate directory re-announce,
// so dynamic paths rebind well before the next periodic announce tick.
func TestPartitionHealRebindsPromptly(t *testing.T) {
	w := newWorld(t)
	fast := qos.RetryPolicy{MaxAttempts: 10, BaseDelay: 20 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Multiplier: 2, NoJitter: true}
	topts := transport.Options{
		DeliverTimeout: 5 * time.Second,
		DialTimeout:    2 * time.Second,
		Retry:          fast,
		Redial:         fast,
	}
	// Long announce interval: prompt rebinding after heal must come from
	// the transport's reconnect hook, not the periodic announce.
	dopts := directory.Options{AnnounceInterval: 400 * time.Millisecond}
	h1 := w.addRuntimeOpts("h1", dopts, topts)
	h2 := w.addRuntimeOpts("h2", dopts, topts)

	src := trigger("h1", "src", "text/plain")
	dst := newCollector("h2", "dst", "text/plain")
	if err := h1.Register(src); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := h2.Register(dst); err != nil {
		t.Fatalf("Register: %v", err)
	}
	w.waitLookup(h1, core.Query{NameContains: "dst"}, 1)

	id, err := h1.ConnectQuery(ref(src, "out"), core.QueryAccepting("text/plain", ""))
	if err != nil {
		t.Fatalf("ConnectQuery: %v", err)
	}

	w.net.Partition("h1", "h2")
	// Wait for the directory to expire h2 and the path to unbind.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, _ := h1.Transport().PathStats(id)
		if stats.Bound == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("binding survived the partition")
		}
		time.Sleep(25 * time.Millisecond)
	}

	w.net.Heal("h1", "h2")
	// The redial cycle reconnects and both sides re-announce promptly;
	// the path rebinds and traffic flows again.
	deadline = time.Now().Add(10 * time.Second)
	for {
		stats, _ := h1.Transport().PathStats(id)
		if stats.Bound == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("path never rebound after heal")
		}
		time.Sleep(25 * time.Millisecond)
	}
	src.Emit("out", core.NewMessage("text/plain", []byte("healed")))
	if got := dst.wait(t, 5*time.Second); string(got.Payload) != "healed" {
		t.Fatalf("payload = %q", got.Payload)
	}
}
