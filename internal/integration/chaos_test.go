package integration

import (
	"fmt"
	stdruntime "runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/mappers/mbmap"
	"repro/internal/mappers/motesmap"
	"repro/internal/mappers/rmimap"
	"repro/internal/mappers/wsmap"
	"repro/internal/netemu"
	"repro/internal/obs"
	"repro/internal/platform/bluetooth"
	"repro/internal/platform/mediabroker"
	"repro/internal/platform/motes"
	"repro/internal/platform/rmi"
	"repro/internal/platform/upnp"
	"repro/internal/platform/webservice"
	"repro/internal/qos"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// chaosPlatforms is every platform the crash/restart cycle must bring
// back after each node death.
var chaosPlatforms = []string{"upnp", "bluetooth", "rmi", "mediabroker", "motes", "webservice"}

func chaosRetry() qos.RetryPolicy {
	return qos.RetryPolicy{MaxAttempts: 6, BaseDelay: 20 * time.Millisecond, MaxDelay: 150 * time.Millisecond, Multiplier: 2, NoJitter: true}
}

// newChaosRuntime builds a runtime on an existing host with fast
// announce and retry cadences, so crashes are detected and ridden out
// within a test-sized budget.
func newChaosRuntime(w *world, host *netemu.Host) *runtime.Runtime {
	w.t.Helper()
	rt, err := runtime.New(runtime.Config{
		Node:      host.Name(),
		Host:      host,
		Directory: directory.Options{AnnounceInterval: 30 * time.Millisecond},
		Transport: transport.Options{
			DeliverTimeout: 5 * time.Second,
			DialTimeout:    time.Second,
			Retry:          chaosRetry(),
			Redial:         chaosRetry(),
		},
		MapperRetry: chaosRetry(),
	})
	if err != nil {
		w.t.Fatalf("runtime.New(%s): %v", host.Name(), err)
	}
	if err := rt.Start(); err != nil {
		w.t.Fatalf("runtime.Start(%s): %v", host.Name(), err)
	}
	w.t.Cleanup(func() { rt.Close() })
	return rt
}

// addChaosMappers attaches all six platform mappers to the victim
// runtime. The native devices live on their own hosts and survive the
// victim's crashes; a fresh incarnation must rediscover every one.
func addChaosMappers(w *world, rt *runtime.Runtime, wsURL string) {
	w.t.Helper()
	fastUPnPMapper(w, rt)
	fastBTMapper(w, rt)
	if err := rt.AddMapper(rmimap.New(rt.Host(), rmimap.Options{
		RegistryHost: "rmi-dev",
		PollInterval: 100 * time.Millisecond,
		Recorder:     w.rec,
	})); err != nil {
		w.t.Fatalf("AddMapper(rmi): %v", err)
	}
	if err := rt.AddMapper(mbmap.New(rt.Host(), mbmap.Options{
		BrokerHost:   "mb-dev",
		PollInterval: 100 * time.Millisecond,
		Recorder:     w.rec,
	})); err != nil {
		w.t.Fatalf("AddMapper(mediabroker): %v", err)
	}
	if err := rt.AddMapper(motesmap.New(rt.Host(), motesmap.Options{
		LivenessWindow: time.Second,
		Recorder:       w.rec,
	})); err != nil {
		w.t.Fatalf("AddMapper(motes): %v", err)
	}
	if err := rt.AddMapper(wsmap.New(rt.Host(), wsmap.Options{
		BaseURLs:     []string{wsURL},
		PollInterval: 100 * time.Millisecond,
		Recorder:     w.rec,
	})); err != nil {
		w.t.Fatalf("AddMapper(webservice): %v", err)
	}
}

// startMoteRetry boots a mote once the victim's base station is
// listening. Motes die silently with their base station (the emulated
// serial link drops), so each victim incarnation gets a fresh one.
func startMoteRetry(w *world, host *netemu.Host, base string, id uint16) *motes.Mote {
	w.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err := motes.StartMote(host, base, id, motes.MoteOptions{Interval: 30 * time.Millisecond})
		if err == nil {
			return m
		}
		if time.Now().After(deadline) {
			w.t.Fatalf("StartMote: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitBound polls a path until it reports n bound destinations.
func waitBound(w *world, rt *runtime.Runtime, id transport.PathID, n int) {
	w.t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	for {
		stats, _ := rt.Transport().PathStats(id)
		if stats.Bound == n {
			return
		}
		if time.Now().After(deadline) {
			w.t.Fatalf("path bound = %d, want %d", stats.Bound, n)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// waitRemoteEmpty polls until a runtime's directory holds no remote
// entries (the crashed node's leases have lapsed).
func waitRemoteEmpty(w *world, rt *runtime.Runtime) {
	w.t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	for {
		if _, remote := rt.Directory().Size(); remote == 0 {
			return
		}
		if time.Now().After(deadline) {
			_, remote := rt.Directory().Size()
			w.t.Fatalf("%d remote entries survive the crash", remote)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// waitGoroutines polls until the process goroutine count falls to max,
// dumping all stacks on timeout.
func waitGoroutines(t *testing.T, max int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		n := stdruntime.NumGoroutine()
		if n <= max {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			got := stdruntime.Stack(buf, true)
			t.Fatalf("goroutines = %d, want <= %d\n%s", n, max, buf[:got])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCrashRestartChaosAllMappers is the self-healing soak: a victim
// node hosting all six platform mappers is crashed abruptly (no bye)
// and restarted under the same name, repeatedly. After every crash the
// observer's leases lapse, its dynamic path fails over to the surviving
// candidate, and traffic keeps flowing; after every restart the fresh
// incarnation rediscovers every platform and the path rebinds. The
// cycle must not leak goroutines and must end with a clean health and
// obs picture.
func TestCrashRestartChaosAllMappers(t *testing.T) {
	cycles := 3
	if testing.Short() {
		cycles = 1
	}
	w := newWorld(t)
	h1 := newChaosRuntime(w, w.net.MustAddHost("h1"))
	victim := newChaosRuntime(w, w.net.MustAddHost("h2"))

	// Native devices on their own hosts: they survive every crash.
	light := upnp.NewBinaryLight(w.net.MustAddHost("light-dev"), "light-1", "Desk Lamp", upnp.DeviceOptions{})
	if err := light.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	defer light.Unpublish()

	camAdapter, err := bluetooth.NewAdapter(w.net.MustAddHost("cam-dev"), "cam", bluetooth.AdapterOptions{
		ScanInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewAdapter: %v", err)
	}
	defer camAdapter.Close()
	cam, err := bluetooth.NewBIPCamera(camAdapter, "Pocket Cam")
	if err != nil {
		t.Fatalf("NewBIPCamera: %v", err)
	}
	defer cam.Close()

	rmiHost := w.net.MustAddHost("rmi-dev")
	rmiReg, err := rmi.NewRegistry(rmiHost)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer rmiReg.Close()
	rmiSrv, err := rmi.NewServer(rmiHost, 0)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer rmiSrv.Close()
	echoRef := rmi.ExportEcho(rmiSrv)
	if err := rmi.NewRegistryClient(rmiHost, "rmi-dev").Bind(t.Context(), "echo", echoRef); err != nil {
		t.Fatalf("Bind: %v", err)
	}

	broker, err := mediabroker.NewBroker(w.net.MustAddHost("mb-dev"))
	if err != nil {
		t.Fatalf("NewBroker: %v", err)
	}
	defer broker.Close()
	prod, err := mediabroker.NewProducer(t.Context(), w.net.MustAddHost("mb-producer"), "mb-dev", "feed", "application/octet-stream")
	if err != nil {
		t.Fatalf("NewProducer: %v", err)
	}
	defer prod.Close()

	wsHost, err := webservice.NewHost(w.net.MustAddHost("ws-dev"), 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer wsHost.Close()
	wsHost.Register("greeter", "xml-rpc", func(method string, params map[string]string) (map[string]string, error) {
		return map[string]string{"greeting": "hi"}, nil
	})

	moteHost := w.net.MustAddHost("mote-7")

	addChaosMappers(w, victim, wsHost.URL())
	mote := startMoteRetry(w, moteHost, "h2", 7)
	defer mote.Stop()

	// The observer's dynamic path: a source on h1 bound to every
	// text/plain sink in the space — one fallback on h1 itself, one on
	// the victim. Crashing the victim forces a failover to the fallback.
	src := trigger("h1", "src", "text/plain")
	h1Sink := newCollector("h1", "fallback-sink", "text/plain")
	if err := h1.Register(src); err != nil {
		t.Fatalf("Register(src): %v", err)
	}
	if err := h1.Register(h1Sink); err != nil {
		t.Fatalf("Register(fallback): %v", err)
	}
	victimSink := newCollector("h2", "victim-sink", "text/plain")
	if err := victim.Register(victimSink); err != nil {
		t.Fatalf("Register(victim-sink): %v", err)
	}
	id, err := h1.ConnectQuery(ref(src, "out"), core.QueryAccepting("text/plain", ""))
	if err != nil {
		t.Fatalf("ConnectQuery: %v", err)
	}
	waitBound(w, h1, id, 2)
	for _, p := range chaosPlatforms {
		w.waitLookup(h1, core.Query{Platform: p}, 1)
	}

	src.Emit("out", core.NewMessage("text/plain", []byte("warmup")))
	if got := h1Sink.wait(t, 5*time.Second); string(got.Payload) != "warmup" {
		t.Fatalf("fallback warmup = %q", got.Payload)
	}
	if got := victimSink.wait(t, 5*time.Second); string(got.Payload) != "warmup" {
		t.Fatalf("victim warmup = %q", got.Payload)
	}

	// Everything is converged: this is the steady-state goroutine
	// population each cycle must return to.
	time.Sleep(200 * time.Millisecond)
	baseline := stdruntime.NumGoroutine()

	for cycle := 1; cycle <= cycles; cycle++ {
		// Crash: abrupt, no bye. Closing the zombie reaps the dead
		// incarnation's goroutines (the emulator shares one process) but
		// sends nothing — its sockets are already gone.
		if _, err := w.net.CrashNode("h2"); err != nil {
			t.Fatalf("cycle %d: CrashNode: %v", cycle, err)
		}
		victim.Close()

		// Leases lapse; the path fails over to the surviving fallback
		// and keeps delivering.
		waitRemoteEmpty(w, h1)
		waitBound(w, h1, id, 1)
		down := fmt.Sprintf("down-%d", cycle)
		src.Emit("out", core.NewMessage("text/plain", []byte(down)))
		if got := h1Sink.wait(t, 5*time.Second); string(got.Payload) != down {
			t.Fatalf("cycle %d: fallback after crash = %q, want %q", cycle, got.Payload, down)
		}

		// Restart under the same name: a fresh runtime, fresh mappers,
		// fresh victim-side sink and mote.
		host, err := w.net.RestartNode("h2")
		if err != nil {
			t.Fatalf("cycle %d: RestartNode: %v", cycle, err)
		}
		victim = newChaosRuntime(w, host)
		addChaosMappers(w, victim, wsHost.URL())
		victimSink = newCollector("h2", "victim-sink", "text/plain")
		if err := victim.Register(victimSink); err != nil {
			t.Fatalf("cycle %d: Register(victim-sink): %v", cycle, err)
		}
		mote = startMoteRetry(w, moteHost, "h2", 7)

		// Convergence: every platform rediscovered, path rebound.
		for _, p := range chaosPlatforms {
			w.waitLookup(h1, core.Query{Platform: p}, 1)
		}
		waitBound(w, h1, id, 2)
		up := fmt.Sprintf("up-%d", cycle)
		src.Emit("out", core.NewMessage("text/plain", []byte(up)))
		if got := h1Sink.wait(t, 5*time.Second); string(got.Payload) != up {
			t.Fatalf("cycle %d: fallback after restart = %q, want %q", cycle, got.Payload, up)
		}
		if got := victimSink.wait(t, 5*time.Second); string(got.Payload) != up {
			t.Fatalf("cycle %d: victim sink after restart = %q, want %q", cycle, got.Payload, up)
		}
	}

	// End-to-end through a restarted mapper: drive the UPnP light from
	// the observer via the final incarnation's translator.
	p := w.waitLookup(h1, core.Query{DeviceType: upnp.DeviceTypeBinaryLight}, 1)[0]
	btn := trigger("h1", "button", "control/power")
	if err := h1.Register(btn); err != nil {
		t.Fatalf("Register(button): %v", err)
	}
	if _, err := h1.Connect(ref(btn, "out"), core.PortRef{Translator: p.ID, Port: "power-on"}); err != nil {
		t.Fatalf("Connect(power-on): %v", err)
	}
	btn.Emit("out", core.NewMessage("control/power", nil))
	deadline := time.Now().Add(5 * time.Second)
	for !light.Power() {
		if time.Now().After(deadline) {
			t.Fatal("light never switched on through the restarted mapper")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The failovers were real and counted.
	stats, ok := h1.Transport().PathStats(id)
	if !ok {
		t.Fatal("path stats missing")
	}
	if int(stats.Failovers) < cycles {
		t.Fatalf("stats.Failovers = %d, want >= %d", stats.Failovers, cycles)
	}
	if v := h1.Obs().Counter("umiddle_transport_failovers_total", obs.Labels{"node": "h1"}).Value(); v == 0 {
		t.Fatal("umiddle_transport_failovers_total never incremented")
	}
	kinds := make(map[string]bool)
	for _, e := range h1.Obs().Trace().Events() {
		kinds[e.Kind] = true
	}
	for _, k := range []string{"node_down", "node_up", "failover"} {
		if !kinds[k] {
			t.Fatalf("observer trace missing %q events (have %v)", k, kinds)
		}
	}

	// Clean end state: the observer sees exactly one live peer, the
	// final incarnation reports every mapper running with no panics.
	if v := h1.Obs().Gauge("umiddle_directory_live_nodes", obs.Labels{"node": "h1"}).Value(); v != 1 {
		t.Fatalf("live_nodes gauge = %v, want 1", v)
	}
	health := victim.Health()
	if len(health.Mappers) != len(chaosPlatforms) {
		t.Fatalf("health reports %d mappers, want %d", len(health.Mappers), len(chaosPlatforms))
	}
	for _, m := range health.Mappers {
		if m.State != "running" || m.Panics != 0 {
			t.Fatalf("mapper %s ended %q with %d panics, want clean running", m.Platform, m.State, m.Panics)
		}
	}
	for _, p := range chaosPlatforms {
		if v := victim.Obs().Gauge("umiddle_supervisor_mapper_state", obs.Labels{"node": "h2", "platform": p}).Value(); v != 0 {
			t.Fatalf("supervisor state gauge for %s = %v, want 0 (running)", p, v)
		}
	}

	// No goroutine leaks: the steady state is restored.
	waitGoroutines(t, baseline+30, 8*time.Second)
}
