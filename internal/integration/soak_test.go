package integration

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/mapper"
	"repro/internal/mappers/mbmap"
	"repro/internal/mappers/motesmap"
	"repro/internal/mappers/rmimap"
	"repro/internal/mappers/wsmap"
	"repro/internal/netemu"
	"repro/internal/platform/bluetooth"
	"repro/internal/platform/mediabroker"
	"repro/internal/platform/motes"
	"repro/internal/platform/rmi"
	"repro/internal/platform/upnp"
	"repro/internal/platform/webservice"
	"repro/internal/qos"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// soakSink records every delivery (unlike collector, which samples into
// a bounded channel); the soak's loss/duplication audit needs all of
// them.
type soakSink struct {
	*core.Base
	mu   sync.Mutex
	seen []string
}

func newSoakSink(node, local string) *soakSink {
	s := &soakSink{
		Base: core.MustBase(core.Profile{
			ID:       core.MakeTranslatorID(node, "umiddle", local),
			Name:     local,
			Platform: "umiddle",
			Node:     node,
			Shape: core.MustShape(
				core.Port{Name: "in", Kind: core.Digital, Direction: core.Input, Type: "text/plain"},
			),
		}),
	}
	s.MustHandle("in", func(_ context.Context, msg core.Message) error {
		s.mu.Lock()
		s.seen = append(s.seen, string(msg.Payload))
		s.mu.Unlock()
		return nil
	})
	return s
}

// TestSoakChurnAndFaults runs the full stack — three runtimes, all six
// platform mappers with live emulated devices, device churn, and
// injected link faults — for a few seconds of sequenced cross-node
// traffic, then audits the end state: every emitted message delivered
// exactly once, nothing dropped, and a clean observability snapshot (no
// negative gauges, delivery queue depth back to zero).
func TestSoakChurnAndFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	// Unlimited link: the soak stresses the software stack, not the
	// emulated 10 Mbps hub.
	net := netemu.NewNetwork(netemu.Unlimited())
	defer net.Close()
	rec := mapper.NewRecorder()
	w := &world{t: t, net: net, rec: rec}

	retry := qos.RetryPolicy{MaxAttempts: 12, BaseDelay: 20 * time.Millisecond, MaxDelay: 300 * time.Millisecond, Multiplier: 2}
	topts := transport.Options{DeliverTimeout: 5 * time.Second, DialTimeout: 2 * time.Second, Retry: retry, Redial: retry}
	dopts := directory.Options{AnnounceInterval: 30 * time.Millisecond}
	h1 := w.addRuntimeOpts("h1", dopts, topts)
	h2 := w.addRuntimeOpts("h2", dopts, topts)
	h3 := w.addRuntimeOpts("h3", dopts, topts)
	runtimes := map[string]*runtime.Runtime{"h1": h1, "h2": h2, "h3": h3}

	// --- the six platform mappers, each with a live emulated device ---
	fastUPnPMapper(w, h1)
	light := upnp.NewBinaryLight(net.MustAddHost("light-dev"), "light-1", "Desk Lamp", upnp.DeviceOptions{})
	if err := light.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	defer light.Unpublish()

	fastBTMapper(w, h1)
	camAdapter, err := bluetooth.NewAdapter(net.MustAddHost("cam-dev"), "cam", bluetooth.AdapterOptions{})
	if err != nil {
		t.Fatalf("NewAdapter: %v", err)
	}
	defer camAdapter.Close()
	if _, err := bluetooth.NewBIPCamera(camAdapter, "Pocket Cam"); err != nil {
		t.Fatalf("NewBIPCamera: %v", err)
	}

	rmiHost := net.MustAddHost("rmi-dev")
	rmiReg, err := rmi.NewRegistry(rmiHost)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer rmiReg.Close()
	rmiSrv, err := rmi.NewServer(rmiHost, 0)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer rmiSrv.Close()
	if err := rmi.NewRegistryClient(rmiHost, "rmi-dev").Bind(t.Context(), "echo", rmi.ExportEcho(rmiSrv)); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := h2.AddMapper(rmimap.New(h2.Host(), rmimap.Options{RegistryHost: "rmi-dev", PollInterval: 100 * time.Millisecond, Recorder: rec})); err != nil {
		t.Fatalf("AddMapper(rmi): %v", err)
	}

	broker, err := mediabroker.NewBroker(net.MustAddHost("mb-dev"))
	if err != nil {
		t.Fatalf("NewBroker: %v", err)
	}
	defer broker.Close()
	prod, err := mediabroker.NewProducer(t.Context(), net.MustAddHost("mb-producer"), "mb-dev", "feed", "application/octet-stream")
	if err != nil {
		t.Fatalf("NewProducer: %v", err)
	}
	defer prod.Close()
	if err := h2.AddMapper(mbmap.New(h2.Host(), mbmap.Options{BrokerHost: "mb-dev", PollInterval: 100 * time.Millisecond, Recorder: rec})); err != nil {
		t.Fatalf("AddMapper(mb): %v", err)
	}

	if err := h3.AddMapper(motesmap.New(h3.Host(), motesmap.Options{LivenessWindow: time.Second, Recorder: rec})); err != nil {
		t.Fatalf("AddMapper(motes): %v", err)
	}
	mote, err := motes.StartMote(net.MustAddHost("mote-7"), "h3", 7, motes.MoteOptions{Interval: 30 * time.Millisecond})
	if err != nil {
		t.Fatalf("StartMote: %v", err)
	}
	defer func() { mote.Stop() }()

	wsHost, err := webservice.NewHost(net.MustAddHost("ws-dev"), 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer wsHost.Close()
	wsHost.Register("greeter", "xml-rpc", func(_ string, params map[string]string) (map[string]string, error) {
		return map[string]string{"greeting": "hello " + params["name"]}, nil
	})
	if err := h3.AddMapper(wsmap.New(h3.Host(), wsmap.Options{BaseURLs: []string{wsHost.URL()}, PollInterval: 100 * time.Millisecond, Recorder: rec})); err != nil {
		t.Fatalf("AddMapper(ws): %v", err)
	}

	// Every platform must be mapped before the churn starts.
	w.waitLookup(h1, core.Query{Platform: "upnp"}, 1)
	w.waitLookup(h1, core.Query{Platform: "bluetooth"}, 1)
	w.waitLookup(h2, core.Query{Platform: "rmi"}, 1)
	w.waitLookup(h2, core.Query{Platform: "mediabroker"}, 1)
	w.waitLookup(h3, core.Query{Platform: "motes"}, 1)
	w.waitLookup(h3, core.Query{Platform: "webservice"}, 1)

	// --- sequenced workload: a delivery ring across the three nodes ---
	type pair struct {
		name string
		src  *core.Base
		sink *soakSink
		from *runtime.Runtime
		id   transport.PathID
	}
	pairs := []*pair{
		{name: "a", src: trigger("h1", "soak-src-a", "text/plain"), sink: newSoakSink("h2", "soak-dst-a"), from: h1},
		{name: "b", src: trigger("h2", "soak-src-b", "text/plain"), sink: newSoakSink("h3", "soak-dst-b"), from: h2},
		{name: "c", src: trigger("h3", "soak-src-c", "text/plain"), sink: newSoakSink("h1", "soak-dst-c"), from: h3},
	}
	sinkHost := map[string]*runtime.Runtime{"a": h2, "b": h3, "c": h1}
	for _, p := range pairs {
		if err := p.from.Register(p.src); err != nil {
			t.Fatalf("Register src %s: %v", p.name, err)
		}
		if err := sinkHost[p.name].Register(p.sink); err != nil {
			t.Fatalf("Register sink %s: %v", p.name, err)
		}
		w.waitLookup(p.from, core.Query{NameContains: "soak-dst-" + p.name}, 1)
		id, err := p.from.Connect(ref(p.src, "out"), ref(p.sink, "in"))
		if err != nil {
			t.Fatalf("Connect %s: %v", p.name, err)
		}
		p.id = id
	}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup

	// Device churn: the light flaps on the UPnP bus, the mote dies and
	// reboots, and a native translator is registered/removed on h2 —
	// directory mapped/unmapped traffic and match-cache invalidation
	// while deliveries flow.
	churnWG.Add(3)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(600 * time.Millisecond):
			}
			if i%2 == 0 {
				light.Unpublish()
			} else {
				light.Publish() //nolint:errcheck
			}
		}
	}()
	go func() {
		defer churnWG.Done()
		m := mote
		alive := true
		for i := 0; ; i++ {
			select {
			case <-stop:
				if alive {
					m.Stop()
				}
				return
			case <-time.After(800 * time.Millisecond):
			}
			if alive {
				m.Stop()
				alive = false
			} else if nm, err := motes.StartMote(net.MustAddHost(fmt.Sprintf("mote-r%d", i)), "h3", uint16(10+i), motes.MoteOptions{Interval: 30 * time.Millisecond}); err == nil {
				m, alive = nm, true
			}
		}
	}()
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(300 * time.Millisecond):
			}
			fl := trigger("h2", fmt.Sprintf("flapper-%d", i), "text/plain")
			if err := h2.Register(fl); err != nil {
				continue
			}
			time.Sleep(100 * time.Millisecond)
			h2.RemoveTranslator(fl.Profile().ID) //nolint:errcheck
		}
	}()

	// Link faults: two partitions, each inside the per-message retry
	// budget, hitting different segments of the delivery ring.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		cut := func(a, b string, at, width time.Duration) {
			select {
			case <-stop:
				return
			case <-time.After(at):
			}
			net.SetLinkDown(a, b, true)
			time.Sleep(width)
			net.SetLinkDown(a, b, false)
		}
		cut("h1", "h2", 800*time.Millisecond, 300*time.Millisecond)
		cut("h2", "h3", 700*time.Millisecond, 300*time.Millisecond)
	}()

	// Emit sequenced payloads for ~3s. Block-policy buffers mean a
	// producer stalls rather than drops while its link is down.
	sent := make([]int, len(pairs))
	var emitWG sync.WaitGroup
	for pi, p := range pairs {
		emitWG.Add(1)
		go func(pi int, p *pair) {
			defer emitWG.Done()
			deadline := time.Now().Add(3 * time.Second)
			for i := 0; time.Now().Before(deadline); i++ {
				p.src.Emit("out", core.NewMessage("text/plain", []byte(fmt.Sprintf("%s:%d", p.name, i))))
				sent[pi] = i + 1
				time.Sleep(4 * time.Millisecond)
			}
		}(pi, p)
	}
	emitWG.Wait()
	close(stop)
	churnWG.Wait()

	// Drain: everything emitted must arrive (retries may still be in
	// flight right after the last fault window).
	deadline := time.Now().Add(8 * time.Second)
	for _, p := range pairs {
		i := 0
		for {
			p.sink.mu.Lock()
			got := len(p.sink.seen)
			p.sink.mu.Unlock()
			if got >= sent[indexOf(pairs, p)] {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("pair %s: %d/%d delivered", p.name, got, sent[indexOf(pairs, p)])
			}
			i++
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Audit: exactly-once per pair, in order, nothing dropped.
	for pi, p := range pairs {
		p.sink.mu.Lock()
		seen := append([]string(nil), p.sink.seen...)
		p.sink.mu.Unlock()
		if len(seen) != sent[pi] {
			t.Fatalf("pair %s: delivered %d, sent %d", p.name, len(seen), sent[pi])
		}
		for i, payload := range seen {
			if want := fmt.Sprintf("%s:%d", p.name, i); payload != want {
				t.Fatalf("pair %s: delivery %d = %q, want %q (lost, duplicated, or reordered)", p.name, i, payload, want)
			}
		}
		stats, ok := p.from.Transport().PathStats(p.id)
		if !ok {
			t.Fatalf("pair %s: path stats gone", p.name)
		}
		if stats.Dropped != 0 {
			t.Fatalf("pair %s: %d deliveries dropped", p.name, stats.Dropped)
		}
	}

	// Obs snapshot must be clean on every runtime: gauges can never be
	// negative, and with the workload drained the delivery queues must
	// be empty again.
	for name, rt := range runtimes {
		snap := rt.Obs().Snapshot()
		for _, g := range snap.Gauges {
			if g.Value < 0 {
				t.Fatalf("%s: negative gauge %s%v = %d", name, g.Name, g.Labels, g.Value)
			}
			if strings.Contains(g.Name, "delivery_queue_depth") && g.Value != 0 {
				t.Fatalf("%s: delivery queue depth stuck at %d", name, g.Value)
			}
		}
	}
}

func indexOf[T comparable](s []T, v T) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
