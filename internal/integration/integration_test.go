// Package integration exercises uMiddle end-to-end: real emulated
// devices on the emulated network, discovered by platform mappers,
// imported into runtimes, and composed across platforms through the
// directory and transport modules — including the paper's Figure 5
// scenario (Bluetooth BIP camera on node H1, UPnP MediaRenderer TV on
// node H2).
package integration

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/mapper"
	"repro/internal/mappers/btmap"
	"repro/internal/mappers/mbmap"
	"repro/internal/mappers/motesmap"
	"repro/internal/mappers/rmimap"
	"repro/internal/mappers/upnpmap"
	"repro/internal/mappers/wsmap"
	"repro/internal/netemu"
	"repro/internal/platform/bluetooth"
	"repro/internal/platform/mediabroker"
	"repro/internal/platform/motes"
	"repro/internal/platform/rmi"
	"repro/internal/platform/upnp"
	"repro/internal/platform/webservice"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// world is a test fixture: an emulated network plus uMiddle runtimes.
type world struct {
	t   *testing.T
	net *netemu.Network
	rec *mapper.Recorder
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{
		t:   t,
		net: netemu.NewNetwork(netemu.Ethernet10Mbps()),
		rec: mapper.NewRecorder(),
	}
	t.Cleanup(func() { w.net.Close() })
	return w
}

func (w *world) addRuntime(name string) *runtime.Runtime {
	w.t.Helper()
	rt, err := runtime.New(runtime.Config{
		Node:      name,
		Host:      w.net.MustAddHost(name),
		Directory: directory.Options{AnnounceInterval: 30 * time.Millisecond},
		Transport: transport.Options{DeliverTimeout: 5 * time.Second},
	})
	if err != nil {
		w.t.Fatalf("runtime.New(%s): %v", name, err)
	}
	if err := rt.Start(); err != nil {
		w.t.Fatalf("runtime.Start(%s): %v", name, err)
	}
	w.t.Cleanup(func() { rt.Close() })
	return rt
}

// waitLookup polls a runtime's directory until the query matches n
// profiles.
func (w *world) waitLookup(rt *runtime.Runtime, q core.Query, n int) []core.Profile {
	w.t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	for {
		got := rt.Lookup(q)
		if len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			w.t.Fatalf("lookup %v matched %d profiles, want %d", q, len(got), n)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// collector is a native uMiddle service with one input port.
type collector struct {
	*core.Base
	ch chan core.Message
}

func newCollector(node, local string, typ core.DataType) *collector {
	c := &collector{
		Base: core.MustBase(core.Profile{
			ID:       core.MakeTranslatorID(node, "umiddle", local),
			Name:     local,
			Platform: "umiddle",
			Node:     node,
			Shape: core.MustShape(
				core.Port{Name: "in", Kind: core.Digital, Direction: core.Input, Type: typ},
			),
		}),
		ch: make(chan core.Message, 256),
	}
	c.MustHandle("in", func(_ context.Context, msg core.Message) error {
		select {
		case c.ch <- msg:
		default:
		}
		return nil
	})
	return c
}

func (c *collector) wait(t *testing.T, d time.Duration) core.Message {
	t.Helper()
	select {
	case m := <-c.ch:
		return m
	case <-time.After(d):
		t.Fatal("no message delivered in time")
		return core.Message{}
	}
}

// trigger is a native uMiddle service with one output port.
func trigger(node, local string, typ core.DataType) *core.Base {
	return core.MustBase(core.Profile{
		ID:       core.MakeTranslatorID(node, "umiddle", local),
		Name:     local,
		Platform: "umiddle",
		Node:     node,
		Shape: core.MustShape(
			core.Port{Name: "out", Kind: core.Digital, Direction: core.Output, Type: typ},
		),
	})
}

func ref(tr core.Translator, port string) core.PortRef {
	return core.PortRef{Translator: tr.Profile().ID, Port: port}
}

func fastUPnPMapper(w *world, rt *runtime.Runtime) *upnpmap.Mapper {
	w.t.Helper()
	m := upnpmap.New(rt.Host(), upnpmap.Options{
		SearchInterval: 200 * time.Millisecond,
		Recorder:       w.rec,
	})
	if err := rt.AddMapper(m); err != nil {
		w.t.Fatalf("AddMapper(upnp): %v", err)
	}
	return m
}

func fastBTMapper(w *world, rt *runtime.Runtime) *btmap.Mapper {
	w.t.Helper()
	adapter, err := bluetooth.NewAdapter(rt.Host(), rt.Node()+"-bt", bluetooth.AdapterOptions{
		ScanInterval: 5 * time.Millisecond,
	})
	if err != nil {
		w.t.Fatalf("NewAdapter: %v", err)
	}
	w.t.Cleanup(func() { adapter.Close() })
	m := btmap.New(adapter, btmap.Options{
		InquiryInterval: 150 * time.Millisecond,
		InquiryWindow:   80 * time.Millisecond,
		Recorder:        w.rec,
	})
	if err := rt.AddMapper(m); err != nil {
		w.t.Fatalf("AddMapper(bt): %v", err)
	}
	return m
}

func TestUPnPLightEndToEnd(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")
	fastUPnPMapper(w, rt)

	light := upnp.NewBinaryLight(w.net.MustAddHost("light-dev"), "light-1", "Desk Lamp", upnp.DeviceOptions{})
	if err := light.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	defer light.Unpublish()

	profiles := w.waitLookup(rt, core.Query{Platform: "upnp"}, 1)
	p := profiles[0]
	if p.DeviceType != upnp.DeviceTypeBinaryLight || p.Shape.Len() != 4 {
		t.Fatalf("profile = %v", p)
	}

	// Drive the light through the intermediary space: a trigger service
	// wired to the power-on port, as the paper's USDL example describes.
	btn := trigger("h1", "button", "control/power")
	if err := rt.Register(btn); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := rt.Connect(ref(btn, "out"), core.PortRef{Translator: p.ID, Port: "power-on"}); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	btn.Emit("out", core.NewMessage("control/power", nil))

	deadline := time.Now().Add(5 * time.Second)
	for !light.Power() {
		if time.Now().After(deadline) {
			t.Fatal("light never switched on through uMiddle")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestUPnPGENAEventFlowsToStatusPort(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")
	fastUPnPMapper(w, rt)

	light := upnp.NewBinaryLight(w.net.MustAddHost("light-dev"), "light-1", "Desk Lamp", upnp.DeviceOptions{})
	light.Publish()
	defer light.Unpublish()
	p := w.waitLookup(rt, core.Query{Platform: "upnp"}, 1)[0]

	sink := newCollector("h1", "status-sink", "text/event")
	rt.Register(sink)
	if _, err := rt.Connect(core.PortRef{Translator: p.ID, Port: "status-out"}, ref(sink, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}

	btn := trigger("h1", "button", "control/power")
	rt.Register(btn)
	if _, err := rt.Connect(ref(btn, "out"), core.PortRef{Translator: p.ID, Port: "power-on"}); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	btn.Emit("out", core.NewMessage("control/power", nil))

	msg := sink.wait(t, 5*time.Second)
	if string(msg.Payload) != "1" {
		t.Fatalf("status event = %q, want \"1\"", msg.Payload)
	}
	if msg.Header("variable") != "Power" {
		t.Fatalf("headers = %v", msg.Headers)
	}
}

func TestUPnPDeviceDepartureUnmaps(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")
	m := fastUPnPMapper(w, rt)

	light := upnp.NewBinaryLight(w.net.MustAddHost("light-dev"), "light-1", "Desk Lamp", upnp.DeviceOptions{})
	light.Publish()
	w.waitLookup(rt, core.Query{Platform: "upnp"}, 1)
	light.Unpublish() // sends ssdp:byebye

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m.MappedCount() == 0 && len(rt.Lookup(core.Query{Platform: "upnp"})) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("device never unmapped after byebye")
		}
		time.Sleep(15 * time.Millisecond)
	}
}

func TestBluetoothCameraCaptureFlow(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")
	fastBTMapper(w, rt)

	camAdapter, err := bluetooth.NewAdapter(w.net.MustAddHost("cam-dev"), "cam", bluetooth.AdapterOptions{
		ScanInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewAdapter: %v", err)
	}
	defer camAdapter.Close()
	cam, err := bluetooth.NewBIPCamera(camAdapter, "Pocket Cam")
	if err != nil {
		t.Fatalf("NewBIPCamera: %v", err)
	}
	defer cam.Close()
	cam.Capture("shot.jpg", []byte("jpeg-pixels"))

	p := w.waitLookup(rt, core.Query{Platform: "bluetooth", DeviceType: "BIP-Camera"}, 1)[0]

	// Wire image-out to a collector, then pull the shutter through the
	// capture port: GetImage runs over OBEX and the image surfaces on
	// image-out.
	sink := newCollector("h1", "image-sink", "image/jpeg")
	rt.Register(sink)
	if _, err := rt.Connect(core.PortRef{Translator: p.ID, Port: "image-out"}, ref(sink, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	shutter := trigger("h1", "shutter", "control/trigger")
	rt.Register(shutter)
	if _, err := rt.Connect(ref(shutter, "out"), core.PortRef{Translator: p.ID, Port: "capture"}); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	shutter.Emit("out", core.NewMessage("control/trigger", nil))

	msg := sink.wait(t, 5*time.Second)
	if string(msg.Payload) != "jpeg-pixels" {
		t.Fatalf("image = %q", msg.Payload)
	}
	if msg.Type != "image/jpeg" {
		t.Fatalf("type = %q", msg.Type)
	}
}

func TestBluetoothMouseClickToVML(t *testing.T) {
	// The paper's Section 5.2 device-level bridge: mouse click signals
	// are translated into Vector Markup Language documents.
	w := newWorld(t)
	rt := w.addRuntime("h1")
	fastBTMapper(w, rt)

	mouseAdapter, err := bluetooth.NewAdapter(w.net.MustAddHost("mouse-dev"), "mouse", bluetooth.AdapterOptions{
		ScanInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewAdapter: %v", err)
	}
	defer mouseAdapter.Close()
	mouse, err := bluetooth.NewHIDMouse(mouseAdapter, "Travel Mouse")
	if err != nil {
		t.Fatalf("NewHIDMouse: %v", err)
	}
	defer mouse.Close()

	p := w.waitLookup(rt, core.Query{Platform: "bluetooth", DeviceType: "HID-Mouse"}, 1)[0]
	sink := newCollector("h1", "vml-sink", "text/vml")
	rt.Register(sink)
	if _, err := rt.Connect(core.PortRef{Translator: p.ID, Port: "click-out"}, ref(sink, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	// Allow the mapper's HID connection to establish.
	time.Sleep(100 * time.Millisecond)
	mouse.Click(1)

	msg := sink.wait(t, 5*time.Second)
	if msg.Type != "text/vml" {
		t.Fatalf("type = %q, want text/vml", msg.Type)
	}
	if !strings.Contains(string(msg.Payload), "vml") {
		t.Fatalf("payload = %q", msg.Payload)
	}
}

func TestFigure5CameraToTVAcrossNodes(t *testing.T) {
	// Paper Figure 5: Bluetooth BIP camera bridged on node H1, UPnP
	// MediaRenderer TV bridged on node H2, composed with a dynamic
	// template connection, image flowing across the transport modules.
	w := newWorld(t)
	h1 := w.addRuntime("h1")
	h2 := w.addRuntime("h2")
	fastBTMapper(w, h1)
	fastUPnPMapper(w, h2)

	camAdapter, err := bluetooth.NewAdapter(w.net.MustAddHost("cam-dev"), "cam", bluetooth.AdapterOptions{
		ScanInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewAdapter: %v", err)
	}
	defer camAdapter.Close()
	cam, err := bluetooth.NewBIPCamera(camAdapter, "Pocket Cam")
	if err != nil {
		t.Fatalf("NewBIPCamera: %v", err)
	}
	defer cam.Close()
	cam.Capture("shot.jpg", []byte("holiday-photo"))

	tv := upnp.NewMediaRenderer(w.net.MustAddHost("tv-dev"), "tv-1", "Living Room TV", upnp.DeviceOptions{})
	if err := tv.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	defer tv.Unpublish()

	// Both nodes converge on the full picture through the directory.
	camProfile := w.waitLookup(h1, core.Query{DeviceType: "BIP-Camera"}, 1)[0]
	w.waitLookup(h1, core.Query{DeviceType: upnp.DeviceTypeMediaRenderer}, 1)

	// Dynamic device binding (paper Section 3.5): connect the camera's
	// image output to "anything that accepts image/jpeg and renders it
	// visibly" — the TV matches.
	src := core.PortRef{Translator: camProfile.ID, Port: "image-out"}
	if _, err := h1.ConnectQuery(src, core.QueryAccepting("image/jpeg", "visible/*")); err != nil {
		t.Fatalf("ConnectQuery: %v", err)
	}

	// Fire the shutter from H2 (remote connect request travels to H1).
	shutter := trigger("h2", "shutter", "control/trigger")
	h2.Register(shutter)
	if _, err := h2.Connect(ref(shutter, "out"), core.PortRef{Translator: camProfile.ID, Port: "capture"}); err != nil {
		t.Fatalf("remote Connect: %v", err)
	}
	shutter.Emit("out", core.NewMessage("control/trigger", nil))

	if err := tv.WaitRendered(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	rendered := tv.Rendered()
	if len(rendered) == 0 || string(rendered[0]) != "holiday-photo" {
		t.Fatalf("rendered = %q", rendered)
	}
}

func TestRMIEchoThroughUMiddle(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")

	rmiHost := w.net.MustAddHost("rmi-dev")
	reg, err := rmi.NewRegistry(rmiHost)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer reg.Close()
	srv, err := rmi.NewServer(rmiHost, 0)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	echoRef := rmi.ExportEcho(srv)
	rc := rmi.NewRegistryClient(rmiHost, "rmi-dev")
	if err := rc.Bind(context.Background(), "echo", echoRef); err != nil {
		t.Fatalf("Bind: %v", err)
	}

	if err := rt.AddMapper(rmimap.New(rt.Host(), rmimap.Options{
		RegistryHost: "rmi-dev",
		PollInterval: 100 * time.Millisecond,
		Recorder:     w.rec,
	})); err != nil {
		t.Fatalf("AddMapper: %v", err)
	}

	p := w.waitLookup(rt, core.Query{Platform: "rmi"}, 1)[0]
	sink := newCollector("h1", "echo-sink", "application/octet-stream")
	rt.Register(sink)
	if _, err := rt.Connect(core.PortRef{Translator: p.ID, Port: "echo-out"}, ref(sink, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	srcT := trigger("h1", "src", "application/octet-stream")
	rt.Register(srcT)
	if _, err := rt.Connect(ref(srcT, "out"), core.PortRef{Translator: p.ID, Port: "echo-in"}); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	srcT.Emit("out", core.NewMessage("application/octet-stream", []byte("ping-1400")))

	msg := sink.wait(t, 5*time.Second)
	if string(msg.Payload) != "ping-1400" {
		t.Fatalf("echo = %q", msg.Payload)
	}
}

func TestMediaBrokerStreamThroughUMiddle(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")

	brokerHost := w.net.MustAddHost("mb-dev")
	broker, err := mediabroker.NewBroker(brokerHost)
	if err != nil {
		t.Fatalf("NewBroker: %v", err)
	}
	defer broker.Close()
	prodHost := w.net.MustAddHost("mb-producer")
	prod, err := mediabroker.NewProducer(context.Background(), prodHost, "mb-dev", "feed", "application/octet-stream")
	if err != nil {
		t.Fatalf("NewProducer: %v", err)
	}
	defer prod.Close()

	if err := rt.AddMapper(mbmap.New(rt.Host(), mbmap.Options{
		BrokerHost:   "mb-dev",
		PollInterval: 100 * time.Millisecond,
		Recorder:     w.rec,
	})); err != nil {
		t.Fatalf("AddMapper: %v", err)
	}

	p := w.waitLookup(rt, core.Query{Platform: "mediabroker"}, 1)[0]

	// Native frames surface on media-out.
	sink := newCollector("h1", "frame-sink", "application/octet-stream")
	rt.Register(sink)
	if _, err := rt.Connect(core.PortRef{Translator: p.ID, Port: "media-out"}, ref(sink, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := prod.Send([]byte("frame-a")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msg := sink.wait(t, 5*time.Second)
	if string(msg.Payload) != "frame-a" {
		t.Fatalf("frame = %q", msg.Payload)
	}

	// Deliveries to media-in are published on the return stream.
	cons, err := mediabroker.NewConsumer(context.Background(), prodHost, "mb-dev", "feed"+mbmap.ReturnSuffix)
	if err != nil {
		// The return stream appears on first publish; deliver then
		// retry.
		srcT := trigger("h1", "mb-src", "application/octet-stream")
		rt.Register(srcT)
		if _, err := rt.Connect(ref(srcT, "out"), core.PortRef{Translator: p.ID, Port: "media-in"}); err != nil {
			t.Fatalf("Connect: %v", err)
		}
		srcT.Emit("out", core.NewMessage("application/octet-stream", []byte("back-1")))
		deadline := time.Now().Add(5 * time.Second)
		for {
			cons, err = mediabroker.NewConsumer(context.Background(), prodHost, "mb-dev", "feed"+mbmap.ReturnSuffix)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("return stream never appeared: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
		defer cons.Close()
		srcT.Emit("out", core.NewMessage("application/octet-stream", []byte("back-2")))
		frame, err := cons.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if !strings.HasPrefix(string(frame), "back-") {
			t.Fatalf("return frame = %q", frame)
		}
		return
	}
	defer cons.Close()
}

func TestMotesThroughUMiddle(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")
	if err := rt.AddMapper(motesmap.New(rt.Host(), motesmap.Options{
		LivenessWindow: time.Second,
		Recorder:       w.rec,
	})); err != nil {
		t.Fatalf("AddMapper: %v", err)
	}

	mote, err := motes.StartMote(w.net.MustAddHost("mote-7"), "h1", 7, motes.MoteOptions{
		Interval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartMote: %v", err)
	}
	defer mote.Stop()

	p := w.waitLookup(rt, core.Query{Platform: "motes"}, 1)[0]
	if p.Attr("moteId") != "7" {
		t.Fatalf("profile = %v", p)
	}
	sink := newCollector("h1", "reading-sink", "text/sensor-reading")
	rt.Register(sink)
	if _, err := rt.Connect(core.PortRef{Translator: p.ID, Port: "light-out"}, ref(sink, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	msg := sink.wait(t, 5*time.Second)
	if msg.Header("sensor") != "light" || len(msg.Payload) == 0 {
		t.Fatalf("reading = %v", msg)
	}

	// Mote death: silent motes are unmapped.
	mote.Stop()
	deadline := time.Now().Add(6 * time.Second)
	for len(rt.Lookup(core.Query{Platform: "motes"})) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead mote never unmapped")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestWebServiceThroughUMiddle(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")

	wsHost, err := webservice.NewHost(w.net.MustAddHost("ws-dev"), 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer wsHost.Close()
	wsHost.Register("greeter", "xml-rpc", func(method string, params map[string]string) (map[string]string, error) {
		return map[string]string{"greeting": "hello " + params["name"]}, nil
	})

	if err := rt.AddMapper(wsmap.New(rt.Host(), wsmap.Options{
		BaseURLs:     []string{wsHost.URL()},
		PollInterval: 100 * time.Millisecond,
		Recorder:     w.rec,
	})); err != nil {
		t.Fatalf("AddMapper: %v", err)
	}

	p := w.waitLookup(rt, core.Query{Platform: "webservice"}, 1)[0]
	sink := newCollector("h1", "resp-sink", "application/xml")
	rt.Register(sink)
	if _, err := rt.Connect(core.PortRef{Translator: p.ID, Port: "response-out"}, ref(sink, "in")); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	srcT := trigger("h1", "req-src", "application/xml")
	rt.Register(srcT)
	if _, err := rt.Connect(ref(srcT, "out"), core.PortRef{Translator: p.ID, Port: "request-in"}); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	srcT.Emit("out", core.NewMessage("application/xml",
		[]byte(`<request><method>greet</method><param name="name">world</param></request>`)))

	msg := sink.wait(t, 5*time.Second)
	if !strings.Contains(string(msg.Payload), "hello world") {
		t.Fatalf("response = %q", msg.Payload)
	}
}

func TestCrossPlatformPolymorphism(t *testing.T) {
	// The paper's device polymorphism (Section 3.5): one template-based
	// connection binds the camera to every compatible renderer — here a
	// UPnP TV and a Bluetooth BIP printer at once.
	w := newWorld(t)
	rt := w.addRuntime("h1")
	fastUPnPMapper(w, rt)
	fastBTMapper(w, rt)

	tv := upnp.NewMediaRenderer(w.net.MustAddHost("tv-dev"), "tv-1", "TV", upnp.DeviceOptions{})
	tv.Publish()
	defer tv.Unpublish()

	prAdapter, err := bluetooth.NewAdapter(w.net.MustAddHost("printer-dev"), "printer", bluetooth.AdapterOptions{
		ScanInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewAdapter: %v", err)
	}
	defer prAdapter.Close()
	printer, err := bluetooth.NewBIPPrinter(prAdapter, "Photo Printer")
	if err != nil {
		t.Fatalf("NewBIPPrinter: %v", err)
	}
	defer printer.Close()

	w.waitLookup(rt, core.Query{DeviceType: upnp.DeviceTypeMediaRenderer}, 1)
	w.waitLookup(rt, core.Query{DeviceType: "BIP-Printer"}, 1)

	camera := trigger("h1", "photo-source", "image/jpeg")
	rt.Register(camera)
	id, err := rt.ConnectQuery(ref(camera, "out"), core.QueryAccepting("image/jpeg", ""))
	if err != nil {
		t.Fatalf("ConnectQuery: %v", err)
	}
	// Both devices bind to the one dynamic path.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, _ := rt.Transport().PathStats(id)
		if stats.Bound == 2 {
			break
		}
		if time.Now().After(deadline) {
			stats, _ := rt.Transport().PathStats(id)
			t.Fatalf("bound = %d, want 2", stats.Bound)
		}
		time.Sleep(15 * time.Millisecond)
	}

	camera.Emit("out", core.NewMessage("image/jpeg", []byte("one-shot")))
	if err := tv.WaitRendered(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case <-printer.Notify():
	case <-time.After(5 * time.Second):
		t.Fatal("printer never printed")
	}
	if got := printer.Printed(); string(got[0]) != "one-shot" {
		t.Fatalf("printed = %q", got[0])
	}
}

func TestFigure10SamplesRecorded(t *testing.T) {
	// The recorder feeds Figure 10; verify mapping samples carry the
	// port counts the paper's analysis leans on (clock = 14 ports).
	w := newWorld(t)
	rt := w.addRuntime("h1")
	fastUPnPMapper(w, rt)

	clock := upnp.NewClock(w.net.MustAddHost("clock-dev"), "clock-1", "Wall Clock", upnp.DeviceOptions{})
	clock.Publish()
	defer clock.Unpublish()
	w.waitLookup(rt, core.Query{DeviceType: upnp.DeviceTypeClock}, 1)

	samples := w.rec.Samples()
	if len(samples) == 0 {
		t.Fatal("no mapping samples recorded")
	}
	s := samples[0]
	if s.Ports != 14 {
		t.Fatalf("clock sample ports = %d, want 14", s.Ports)
	}
	if s.Duration <= 0 {
		t.Fatalf("sample duration = %v", s.Duration)
	}
	sums := mapper.Summarize(samples)
	if len(sums) != 1 || sums[0].Count != 1 || sums[0].PerSecond <= 0 {
		t.Fatalf("summary = %+v", sums)
	}
}

// TestFutureEvolutionVersionFallback exercises the paper's requirement
// (4) Future Evolution: a BinaryLight:2 device — a newer revision of a
// known type — is still bridged, via the USDL registry's
// version-insensitive fallback to the :1 description.
func TestFutureEvolutionVersionFallback(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")
	fastUPnPMapper(w, rt)

	// A v2 light: same SwitchPower service, newer device type URN.
	scpd := upnp.SCPD{
		SpecVersion: upnp.SpecVersion{Major: 1, Minor: 0},
		Actions: []upnp.SCPDAction{
			{Name: "SetPower", Arguments: []upnp.SCPDArgument{{Name: "Power", Direction: "in", RelatedStateVar: "Power"}}},
		},
		StateVars: []upnp.StateVar{{SendEvents: "yes", Name: "Power", DataType: "boolean", Default: "0"}},
	}
	svc := upnp.NewService(upnp.ServiceTypeSwitchPower, "urn:upnp-org:serviceId:SwitchPower", scpd)
	var state struct {
		mu    sync.Mutex
		power string
	}
	svc.Handle("SetPower", func(args map[string]string) (map[string]string, error) {
		state.mu.Lock()
		state.power = args["Power"]
		state.mu.Unlock()
		return map[string]string{}, nil
	})
	dev := upnp.NewDevice(w.net.MustAddHost("v2-dev"), "l2", "urn:schemas-upnp-org:device:BinaryLight:2", "Next-gen Lamp", 0, svc)
	if err := dev.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	defer dev.Unpublish()

	p := w.waitLookup(rt, core.Query{Platform: "upnp"}, 1)[0]
	if p.DeviceType != "urn:schemas-upnp-org:device:BinaryLight:2" {
		t.Fatalf("device type = %q", p.DeviceType)
	}
	// The fallback USDL gives it the BinaryLight shape; control works.
	tr, ok := rt.Directory().Local(p.ID)
	if !ok {
		t.Fatal("translator not local")
	}
	if err := tr.Deliver(context.Background(), "power-on", core.Message{}); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	state.mu.Lock()
	defer state.mu.Unlock()
	if state.power != "1" {
		t.Fatalf("power = %q", state.power)
	}
}

// TestNewPlatformViaCustomUSDL exercises the paper's first extensibility
// dimension: a brand-new device type becomes bridgeable by loading a
// USDL document at runtime, no code changes.
func TestNewPlatformViaCustomUSDL(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")
	if err := rt.USDL().AddString(`<?xml version="1.0"?>
<usdl version="1.0">
  <service name="UPnP Coffee Maker" platform="upnp">
    <match deviceType="urn:example:device:CoffeeMaker:1"/>
    <port name="brew" kind="digital" direction="input" type="control/brew">
      <bind action="Brew"><arg name="Cups" from="payload"/></bind>
    </port>
    <port name="aroma" kind="physical" direction="output" type="tangible/air"/>
  </service>
</usdl>`); err != nil {
		t.Fatalf("AddString: %v", err)
	}
	fastUPnPMapper(w, rt)

	scpd := upnp.SCPD{
		SpecVersion: upnp.SpecVersion{Major: 1, Minor: 0},
		Actions: []upnp.SCPDAction{
			{Name: "Brew", Arguments: []upnp.SCPDArgument{{Name: "Cups", Direction: "in", RelatedStateVar: "Cups"}}},
		},
		StateVars: []upnp.StateVar{{SendEvents: "no", Name: "Cups", DataType: "ui2", Default: "0"}},
	}
	svc := upnp.NewService("urn:example:service:Brewer:1", "urn:example:serviceId:Brewer", scpd)
	brewed := make(chan string, 4)
	svc.Handle("Brew", func(args map[string]string) (map[string]string, error) {
		brewed <- args["Cups"]
		return map[string]string{}, nil
	})
	dev := upnp.NewDevice(w.net.MustAddHost("coffee-dev"), "c1", "urn:example:device:CoffeeMaker:1", "Coffee Maker", 0, svc)
	if err := dev.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	defer dev.Unpublish()

	p := w.waitLookup(rt, core.Query{NameContains: "coffee"}, 1)[0]
	tr, _ := rt.Directory().Local(p.ID)
	if err := tr.Deliver(context.Background(), "brew", core.NewMessage("control/brew", []byte("2"))); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	select {
	case cups := <-brewed:
		if cups != "2" {
			t.Fatalf("cups = %q", cups)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("brew never reached the device")
	}
}

// TestRemoteDynamicBinding issues a template-based connect from a node
// that does not host the source translator: the request is forwarded and
// the dynamic path lives on the source's node, binding as devices
// appear anywhere in the space.
func TestRemoteDynamicBinding(t *testing.T) {
	w := newWorld(t)
	h1 := w.addRuntime("h1")
	h2 := w.addRuntime("h2")

	camera := trigger("h1", "camera", "image/jpeg")
	h1.Register(camera)
	camProfile := w.waitLookup(h2, core.Query{NameContains: "camera"}, 1)[0]

	// Template connect from h2 for an h1-hosted source.
	id, err := h2.ConnectQuery(
		core.PortRef{Translator: camProfile.ID, Port: "out"},
		core.QueryAccepting("image/jpeg", ""),
	)
	if err != nil {
		t.Fatalf("remote ConnectQuery: %v", err)
	}
	if !strings.HasPrefix(string(id), "h1#") {
		t.Fatalf("path owner = %q, want h1", id)
	}

	// A matching device appears later on h2: it binds automatically.
	tv := newCollector("h2", "late-tv", "image/jpeg")
	h2.Register(tv)
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, ok := h1.Transport().PathStats(id)
		if ok && stats.Bound == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("remote dynamic path never bound")
		}
		time.Sleep(20 * time.Millisecond)
	}
	camera.Emit("out", core.NewMessage("image/jpeg", []byte("late-bound")))
	got := tv.wait(t, 5*time.Second)
	if string(got.Payload) != "late-bound" {
		t.Fatalf("payload = %q", got.Payload)
	}
}

// TestDeviceChurnUnderDynamicPath stresses the dynamic-binding machinery:
// devices appear and disappear while a template path routes traffic. No
// deadlocks, no panics, and the path ends bound to exactly the surviving
// population.
func TestDeviceChurnUnderDynamicPath(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")
	src := trigger("h1", "src", "image/jpeg")
	rt.Register(src)
	id, err := rt.ConnectQuery(ref(src, "out"), core.QueryAccepting("image/jpeg", ""))
	if err != nil {
		t.Fatalf("ConnectQuery: %v", err)
	}

	stop := make(chan struct{})
	var emitWG sync.WaitGroup
	emitWG.Add(1)
	go func() {
		defer emitWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			src.Emit("out", core.NewMessage("image/jpeg", []byte("x")))
			time.Sleep(time.Millisecond)
		}
	}()

	// Churn: register and unregister sinks while traffic flows.
	const rounds = 15
	for i := 0; i < rounds; i++ {
		sink := newCollector("h1", fmt.Sprintf("churn-%d", i), "image/jpeg")
		if err := rt.Register(sink); err != nil {
			t.Fatalf("Register: %v", err)
		}
		if i%2 == 0 {
			if err := rt.RemoveTranslator(sink.Profile().ID); err != nil {
				t.Fatalf("RemoveTranslator: %v", err)
			}
		}
	}
	close(stop)
	emitWG.Wait()

	// Survivors: the odd-numbered sinks (8 of 15).
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, ok := rt.Transport().PathStats(id)
		if ok && stats.Bound == 7 {
			break
		}
		if time.Now().After(deadline) {
			stats, _ := rt.Transport().PathStats(id)
			t.Fatalf("bound = %d, want 7 survivors", stats.Bound)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestViewVsPrintShapeSelection reproduces the paper's Section 3.3
// narrative: "If a user wishes to view a document in one way or another,
// the application can select a device with an input port of the
// document's MIME-type and physical output port of visible/*. If the
// user wants to print it, the application specifies visible/paper."
func TestViewVsPrintShapeSelection(t *testing.T) {
	w := newWorld(t)
	rt := w.addRuntime("h1")
	fastUPnPMapper(w, rt)

	tv := upnp.NewMediaRenderer(w.net.MustAddHost("tv-dev"), "tv-1", "TV", upnp.DeviceOptions{})
	if err := tv.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	defer tv.Unpublish()
	printer := upnp.NewPrinter(w.net.MustAddHost("printer-dev"), "pr-1", "Laser Printer", upnp.DeviceOptions{})
	if err := printer.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	defer printer.Unpublish()
	w.waitLookup(rt, core.Query{Platform: "upnp"}, 2)

	// "View it somewhere visible": both the TV and the printer qualify
	// for a jpeg.
	view := rt.Lookup(core.QueryAccepting("image/jpeg", "visible/*"))
	if len(view) != 2 {
		t.Fatalf("visible/* matched %d devices, want 2 (TV + printer)", len(view))
	}
	// "Print it": only the printer renders on paper.
	print := rt.Lookup(core.QueryAccepting("image/jpeg", "visible/paper"))
	if len(print) != 1 || print[0].DeviceType != upnp.DeviceTypePrinter {
		t.Fatalf("visible/paper matched %v", print)
	}
	// And a PostScript document can only go to the printer at all.
	ps := rt.Lookup(core.QueryAccepting("text/ps", ""))
	if len(ps) != 1 || ps[0].DeviceType != upnp.DeviceTypePrinter {
		t.Fatalf("text/ps matched %v", ps)
	}

	// Deliver a document through uMiddle; the printer's native Print
	// action runs.
	tr, ok := rt.Directory().Local(print[0].ID)
	if !ok {
		t.Fatal("printer translator not local")
	}
	if err := tr.Deliver(context.Background(), "doc-in",
		core.NewMessage("text/ps", []byte("%!PS hello"))); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if err := printer.WaitPrinted(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	docs := printer.Printed()
	if string(docs[0]) != "%!PS hello" {
		t.Fatalf("printed = %q", docs[0])
	}
}

// TestRemappedBindingEndToEnd exercises namespace remapping across the
// full stack: node h2 mounts h1's namespace under "studio", discovers
// the camera by its remapped name, and connects through it. The
// transport must cross the boundary in wire form — h1 has never heard
// of "studio/..." — and payloads must flow end to end.
func TestRemappedBindingEndToEnd(t *testing.T) {
	w := newWorld(t)
	h1 := w.addRuntime("h1")
	h2 := w.addRuntimeOpts("h2", directory.Options{
		AnnounceInterval: 30 * time.Millisecond,
		Remap:            []directory.RemapRule{{Node: "h1", Mount: "studio"}},
	}, transport.Options{DeliverTimeout: 5 * time.Second})

	camera := trigger("h1", "camera", "image/jpeg")
	if err := h1.Register(camera); err != nil {
		t.Fatalf("Register(camera): %v", err)
	}
	tv := newCollector("h2", "tv", "image/jpeg")
	if err := h2.Register(tv); err != nil {
		t.Fatalf("Register(tv): %v", err)
	}

	// h2 sees the camera under the mount, with the real owning node.
	p := w.waitLookup(h2, core.Query{NameContains: "camera"}, 1)[0]
	wantID := core.TranslatorID("studio/umiddle/camera")
	if p.ID != wantID {
		t.Fatalf("remapped camera ID = %s, want %s", p.ID, wantID)
	}
	if p.Node != "h1" {
		t.Fatalf("remapped profile node = %q, want h1", p.Node)
	}

	// Static connect through the remapped name. The path lands on h1
	// (the source's owner), which only knows the wire ID.
	id, err := h2.Connect(core.PortRef{Translator: p.ID, Port: "out"}, ref(tv, "in"))
	if err != nil {
		t.Fatalf("Connect through remapped name: %v", err)
	}
	if !strings.HasPrefix(string(id), "h1#") {
		t.Fatalf("path owner = %q, want h1", id)
	}

	camera.Emit("out", core.NewMessage("image/jpeg", []byte("through the mount")))
	got := tv.wait(t, 5*time.Second)
	if string(got.Payload) != "through the mount" {
		t.Fatalf("payload = %q", got.Payload)
	}

	// Dynamic binding resolves through the mount too.
	qid, err := h2.ConnectQuery(
		core.PortRef{Translator: p.ID, Port: "out"},
		core.QueryAccepting("image/jpeg", ""),
	)
	if err != nil {
		t.Fatalf("ConnectQuery through remapped name: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, ok := h1.Transport().PathStats(qid)
		if ok && stats.Bound >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dynamic path through remapped source never bound")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestInterestFilteredRuntimeBindsEndToEnd: a runtime with interest
// filtering enabled sees only the population it registered interest in,
// yet binds and receives payloads through it exactly like an unfiltered
// node — selective propagation must be invisible to applications.
func TestInterestFilteredRuntimeBindsEndToEnd(t *testing.T) {
	w := newWorld(t)
	h1 := w.addRuntime("h1")
	h2 := w.addRuntimeOpts("h2", directory.Options{
		AnnounceInterval: 30 * time.Millisecond,
		Interest:         true,
	}, transport.Options{DeliverTimeout: 5 * time.Second})

	cancel := h2.Directory().RegisterInterest(core.Query{NameContains: "camera"})
	defer cancel()

	camera := trigger("h1", "camera", "image/jpeg")
	if err := h1.Register(camera); err != nil {
		t.Fatalf("Register(camera): %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := h1.Register(trigger("h1", fmt.Sprintf("sensor-%d", i), "text/plain")); err != nil {
			t.Fatalf("Register(sensor): %v", err)
		}
	}
	tv := newCollector("h2", "tv", "image/jpeg")
	if err := h2.Register(tv); err != nil {
		t.Fatalf("Register(tv): %v", err)
	}

	p := w.waitLookup(h2, core.Query{NameContains: "camera"}, 1)[0]
	// The sensors fall outside h2's interest and must stay invisible.
	time.Sleep(200 * time.Millisecond)
	if got := h2.Lookup(core.Query{Node: "h1"}); len(got) != 1 {
		t.Fatalf("filtered runtime sees %d h1 profiles, want 1 (camera only)", len(got))
	}

	if _, err := h2.Connect(core.PortRef{Translator: p.ID, Port: "out"}, ref(tv, "in")); err != nil {
		t.Fatalf("Connect under interest filtering: %v", err)
	}
	camera.Emit("out", core.NewMessage("image/jpeg", []byte("selective")))
	if got := tv.wait(t, 5*time.Second); string(got.Payload) != "selective" {
		t.Fatalf("payload = %q", got.Payload)
	}
}
