package netemu

import (
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"time"
)

// DefaultSpinWindow is the read-pacing precision window: a reader whose
// head segment becomes deliverable within this long spin-waits (yielding
// the processor each iteration) instead of arming a timer. Go timers on
// a loaded host fire hundreds of microseconds late, which adds a bogus
// fixed cost to every synchronous round trip the emulator carries (an
// RMI call pays it twice); spinning the short tail keeps emulated RTTs
// within a few microseconds of the shaped value. Waits longer than the
// window still sleep on a timer, so idle connections burn no CPU.
const DefaultSpinWindow = 2 * time.Millisecond

// spinUntil busy-waits (with scheduler yields) until t.
func spinUntil(t time.Time) {
	for time.Now().Before(t) {
		runtime.Gosched()
	}
}

// segment is a paced chunk of stream data queued for delivery. buf is
// the original allocation backing data (data shrinks as readers consume
// it); once drained, buf goes back on the stream's freelist.
type segment struct {
	data      []byte
	buf       []byte
	deliverAt time.Time // zero: deliverable immediately (unshaped link)
}

// maxFree returns the segment-buffer freelist bound: enough for every
// segment the BufferBytes window admits in flight at once (a writer can
// burst the whole window before the reader drains any of it), plus
// slack. Retained memory is on the order of the in-flight buffer
// itself — the price for not allocating (and GC-scanning) a fresh
// buffer for every segment on the hot path.
func (s *stream) maxFree() int {
	return s.profile.BufferBytes/s.profile.MTU + 8
}

// stream is one direction of a shaped duplex connection. Writers pace
// their data through a token-bucket-equivalent "busy until" model and
// block when the in-flight buffer is full; readers block until the head
// segment's delivery time has passed.
type stream struct {
	profile LinkProfile
	net     *Network
	from    string
	to      string

	mu       sync.Mutex
	rCond    *sync.Cond
	wCond    *sync.Cond
	queue    []segment
	free     [][]byte // drained segment buffers awaiting reuse
	queued   int
	nextFree time.Time
	closed   bool // write side closed: readers drain then see EOF

	readDeadline  time.Time
	writeDeadline time.Time
	rTimer        *time.Timer
	wTimer        *time.Timer
}

func newStream(n *Network, from, to string, p LinkProfile) *stream {
	s := &stream{profile: p.normalized(), net: n, from: from, to: to}
	s.rCond = sync.NewCond(&s.mu)
	s.wCond = sync.NewCond(&s.mu)
	return s
}

// Write paces b onto the link in MTU-sized segments.
func (s *stream) Write(b []byte) (int, error) {
	total := 0
	for len(b) > 0 {
		chunk := b
		if len(chunk) > s.profile.MTU {
			chunk = chunk[:s.profile.MTU]
		}
		n, err := s.writeSegment(chunk)
		total += n
		if err != nil {
			return total, err
		}
		b = b[n:]
	}
	return total, nil
}

func (s *stream) writeSegment(chunk []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return 0, net.ErrClosed
		}
		if !s.writeDeadline.IsZero() && !time.Now().Before(s.writeDeadline) {
			return 0, os.ErrDeadlineExceeded
		}
		if s.queued+len(chunk) <= s.profile.BufferBytes || s.queued == 0 {
			break
		}
		s.wCond.Wait()
	}
	if s.net != nil && s.net.linkDown(s.from, s.to) {
		return 0, ErrLinkDown
	}
	var extraLatency time.Duration
	if s.net != nil {
		if f, ok := s.net.fault(s.from, s.to); ok {
			if s.net.rng.chance(f.ErrorRate) {
				return 0, ErrInjected
			}
			extraLatency = f.ExtraLatency
		}
	}
	var deliverAt time.Time
	if hub := s.hub(); hub != nil {
		// Hub mode: the whole collision domain carries this segment.
		deliverAt = hub.reserve(len(chunk)).Add(s.profile.Latency + extraLatency)
	} else if s.profile.BandwidthBPS > 0 || s.profile.Latency+extraLatency > 0 {
		now := time.Now()
		txStart := s.nextFree
		if txStart.Before(now) {
			txStart = now
		}
		txEnd := txStart.Add(s.profile.transmitDuration(len(chunk)))
		s.nextFree = txEnd
		deliverAt = txEnd.Add(s.profile.Latency + extraLatency)
	}
	// else: unshaped link — the segment is deliverable immediately
	// (zero deliverAt), and neither side needs to read the clock.
	data := s.getSegBuf(len(chunk))
	copy(data, chunk)
	s.queue = append(s.queue, segment{data: data, buf: data, deliverAt: deliverAt})
	s.queued += len(data)
	s.rCond.Signal()
	return len(chunk), nil
}

// getSegBuf returns a buffer of length n (n <= MTU), reusing a drained
// segment buffer when possible. Fresh buffers are allocated with MTU
// capacity so every recycled buffer fits every future chunk — partial
// tail chunks must not fragment the freelist into unusable sizes.
// Caller holds s.mu.
func (s *stream) getSegBuf(n int) []byte {
	if last := len(s.free) - 1; last >= 0 && cap(s.free[last]) >= n {
		b := s.free[last][:n]
		s.free[last] = nil
		s.free = s.free[:last]
		return b
	}
	c := s.profile.MTU
	if c < n {
		c = n
	}
	return make([]byte, n, c)
}

// Read blocks until data is deliverable, the stream is closed (EOF after
// drain), or the read deadline expires.
func (s *stream) Read(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if !s.readDeadline.IsZero() && !time.Now().Before(s.readDeadline) {
			return 0, os.ErrDeadlineExceeded
		}
		if len(s.queue) > 0 {
			head := &s.queue[0]
			if !head.deliverAt.IsZero() {
				if wait := time.Until(head.deliverAt); wait > 0 {
					if wait <= s.net.spinWindow() {
						// Short wait: spin for precision. The lock is
						// released so writers keep pacing; the queue is
						// re-examined from scratch afterwards.
						deliverAt := head.deliverAt
						s.mu.Unlock()
						spinUntil(deliverAt)
						s.mu.Lock()
						continue
					}
					s.wakeReaderAt(head.deliverAt)
					s.rCond.Wait()
					continue
				}
			}
			n := copy(b, head.data)
			head.data = head.data[n:]
			s.queued -= n
			if len(head.data) == 0 {
				if head.buf != nil && len(s.free) < s.maxFree() {
					s.free = append(s.free, head.buf)
				}
				// Shift rather than reslice: the queue is short (writers
				// block on BufferBytes), and keeping the array's base
				// stable lets append reuse its capacity indefinitely.
				last := len(s.queue) - 1
				copy(s.queue, s.queue[1:])
				s.queue[last] = segment{}
				s.queue = s.queue[:last]
			}
			s.wCond.Signal()
			return n, nil
		}
		if s.closed {
			return 0, io.EOF
		}
		s.rCond.Wait()
	}
}

// wakeReaderAt arms a timer to broadcast to blocked readers at t.
// Caller holds s.mu.
func (s *stream) wakeReaderAt(t time.Time) {
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	if s.rTimer != nil {
		s.rTimer.Stop()
	}
	s.rTimer = time.AfterFunc(d, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.rCond.Broadcast()
	})
}

// hub returns the network's shared medium when hub mode applies to this
// stream (inter-host traffic only; loopback is exempt).
func (s *stream) hub() *medium {
	if s.net == nil || s.from == s.to {
		return nil
	}
	return s.net.sharedMedium()
}

func (s *stream) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.rCond.Broadcast()
	s.wCond.Broadcast()
}

func (s *stream) setReadDeadline(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readDeadline = t
	if s.rTimer != nil {
		s.rTimer.Stop()
		s.rTimer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		s.rTimer = time.AfterFunc(d, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.rCond.Broadcast()
		})
	}
	s.rCond.Broadcast()
}

func (s *stream) setWriteDeadline(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeDeadline = t
	if s.wTimer != nil {
		s.wTimer.Stop()
		s.wTimer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		s.wTimer = time.AfterFunc(d, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.wCond.Broadcast()
		})
	}
	s.wCond.Broadcast()
}

// Conn is a shaped stream connection between two hosts.
type Conn struct {
	local  Addr
	remote Addr
	host   *Host
	read   *stream // data flowing toward us
	write  *stream // data we send

	closeOnce sync.Once
}

var _ net.Conn = (*Conn)(nil)

// newConnPair builds the two endpoints of a connection from dialer d to
// listener host p on the given port.
func newConnPair(d, p *Host, port int, profile LinkProfile) (client, server *Conn) {
	toServer := newStream(d.net, d.name, p.name, profile)
	toClient := newStream(d.net, p.name, d.name, profile)
	clientAddr := Addr{Host: d.name, Port: ephemeralPort(d)}
	serverAddr := Addr{Host: p.name, Port: port}
	client = &Conn{local: clientAddr, remote: serverAddr, host: d, read: toClient, write: toServer}
	server = &Conn{local: serverAddr, remote: clientAddr, host: p, read: toServer, write: toClient}
	return client, server
}

func ephemeralPort(h *Host) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.nextPort == 0 {
		h.nextPort = 49152
	}
	h.nextPort++
	return h.nextPort
}

// Read reads data from the connection.
func (c *Conn) Read(b []byte) (int, error) { return c.read.Read(b) }

// Write writes data to the connection, subject to shaping and
// backpressure.
func (c *Conn) Write(b []byte) (int, error) { return c.write.Write(b) }

// Close closes both directions.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.read.close()
		c.write.close()
		if c.host != nil {
			c.host.untrack(c)
		}
	})
	return nil
}

// LocalAddr returns the local endpoint address.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr returns the remote endpoint address.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.read.setReadDeadline(t)
	c.write.setWriteDeadline(t)
	return nil
}

// SetReadDeadline sets the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.read.setReadDeadline(t)
	return nil
}

// SetWriteDeadline sets the write deadline.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.write.setWriteDeadline(t)
	return nil
}
