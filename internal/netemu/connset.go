package netemu

import (
	"net"
	"sync"
)

// ConnSet tracks a server's accepted connections so shutdown can close
// them all, unblocking per-connection handler goroutines that would
// otherwise wait forever on idle peers.
type ConnSet struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Add registers a connection. It returns false when the set is already
// closed, in which case the caller must close the connection itself and
// bail out.
func (s *ConnSet) Add(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	return true
}

// Remove forgets a connection (typically deferred by its handler).
func (s *ConnSet) Remove(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// CloseAll marks the set closed and closes every tracked connection.
func (s *ConnSet) CloseAll() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = nil
	s.closed = true
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
