package netemu

import (
	"testing"
	"time"
)

// TestGroupInboxOverflowCounted is the regression test for the silent
// drop point at groupInboxSize: flooding a member that never reads must
// surface every overflowed datagram in Network.GroupDrops, so load
// harnesses can fail loudly instead of reporting a latency tail that
// quietly lost its worst samples.
func TestGroupInboxOverflowCounted(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1 := n.MustAddHost("h1")
	h2 := n.MustAddHost("h2")

	sender, err := h1.JoinGroup("flood")
	if err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	receiver, err := h2.JoinGroup("flood")
	if err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	defer sender.Close()
	defer receiver.Close()

	if got := n.GroupDrops(); got != 0 {
		t.Fatalf("GroupDrops before flood = %d, want 0", got)
	}

	// Overfill the receiver's inbox. Unlimited links deliver with zero
	// delay (synchronously), so each Send lands before the next; the
	// sender's own loopback copy also competes for its inbox, hence the
	// flood targets h2's inbox with h2 never reading. The sender drains
	// its own loopback inbox size via a second goroutine-free trick:
	// just count drops attributable to overflow on either end.
	const extra = 500
	for i := 0; i < groupInboxSize+extra; i++ {
		if err := sender.Send([]byte("x")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}

	// Both h1 (loopback) and h2 inboxes hold groupInboxSize each; the
	// rest must be counted, not vanish.
	deadline := time.Now().Add(2 * time.Second)
	want := uint64(2 * extra)
	for n.GroupDrops() < want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := n.GroupDrops(); got < want {
		t.Fatalf("GroupDrops = %d, want >= %d", got, want)
	}

	// A reader that now drains sees exactly the inbox-depth survivors.
	receiver.SetDeadline(time.Now().Add(100 * time.Millisecond))
	var received int
	for {
		if _, err := receiver.Recv(); err != nil {
			break
		}
		received++
	}
	if received != groupInboxSize {
		t.Fatalf("received %d datagrams, want %d", received, groupInboxSize)
	}
}
