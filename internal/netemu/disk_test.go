package netemu

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/wal"
)

func TestDiskSurvivesCrashRestart(t *testing.T) {
	net := NewNetwork(Unlimited())
	defer net.Close()
	net.MustAddHost("n0")

	f := net.Disk("n0").Open("state.wal")
	if _, err := f.Write([]byte("survives power loss")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := net.CrashNode("n0"); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	if _, err := net.RestartNode("n0"); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}

	// The restarted stack opens the same disk and reads back the bytes
	// its predecessor wrote.
	g := net.Disk("n0").Open("state.wal")
	defer g.Close()
	got, err := io.ReadAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("survives power loss")) {
		t.Fatalf("disk content after restart: %q", got)
	}
	if n := net.Disk("n0").Syncs("state.wal"); n != 1 {
		t.Fatalf("sync count: %d, want 1", n)
	}
}

func TestDiskIsPerHost(t *testing.T) {
	net := NewNetwork(Unlimited())
	defer net.Close()
	a := net.Disk("a").Open("f")
	if _, err := a.Write([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	b := net.Disk("b").Open("f")
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("host b saw host a's file: %q", got)
	}
	if sz := net.Disk("a").Size("f"); sz != 5 {
		t.Fatalf("Size = %d, want 5", sz)
	}
	if sz := net.Disk("a").Size("missing"); sz != -1 {
		t.Fatalf("Size(missing) = %d, want -1", sz)
	}
}

func TestMemFileSeekTruncate(t *testing.T) {
	net := NewNetwork(Unlimited())
	defer net.Close()
	f := net.Disk("n").Open("f")
	defer f.Close()
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	// Overwrite in the middle.
	if _, err := f.Seek(2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("AB")); err != nil {
		t.Fatal(err)
	}
	// Relative and end-relative seeks.
	if off, err := f.Seek(-3, io.SeekEnd); err != nil || off != 7 {
		t.Fatalf("SeekEnd: off=%d err=%v", off, err)
	}
	if off, err := f.Seek(1, io.SeekCurrent); err != nil || off != 8 {
		t.Fatalf("SeekCurrent: off=%d err=%v", off, err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01AB" {
		t.Fatalf("content after seek/overwrite/truncate: %q", got)
	}
	// Truncate can also extend with zeros, like ftruncate.
	if err := f.Truncate(6); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(f)
	if !bytes.Equal(got, []byte{'0', '1', 'A', 'B', 0, 0}) {
		t.Fatalf("content after extend: %q", got)
	}
	if _, err := f.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
}

func TestMemFileClosedOps(t *testing.T) {
	net := NewNetwork(Unlimited())
	defer net.Close()
	f := net.Disk("n").Open("f")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write after close accepted")
	}
	if _, err := f.Read(make([]byte, 1)); err == nil {
		t.Fatal("read after close accepted")
	}
	// Data written before close stays durable for the next handle.
	g := net.Disk("n").Open("f")
	defer g.Close()
	if _, err := g.Write([]byte("next life")); err != nil {
		t.Fatal(err)
	}
}

// TestWALOverMemDisk exercises the real durability layer against the
// emulated disk: append, crash the node, restart, replay.
func TestWALOverMemDisk(t *testing.T) {
	net := NewNetwork(Unlimited())
	defer net.Close()
	net.MustAddHost("n0")

	l, err := wal.OpenFile(net.Disk("n0").Open("dir.wal"), "dir.wal")
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := l.Append(1, []byte(`{"epoch":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, []byte("entry")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Power loss: the crashed stack never closes its log.
	if _, err := net.CrashNode("n0"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.RestartNode("n0"); err != nil {
		t.Fatal(err)
	}

	l2, err := wal.OpenFile(net.Disk("n0").Open("dir.wal"), "dir.wal")
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer l2.Close()
	got := l2.Replayed()
	if len(got) != 2 || got[0].Type != 1 || string(got[1].Payload) != "entry" {
		t.Fatalf("replay after crash: %+v", got)
	}
}
