package netemu

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

// dialPair establishes a stream connection h1 -> h2 and returns both
// endpoints.
func dialPair(t *testing.T, n *Network) (client, server *Conn) {
	t.Helper()
	h1 := n.MustAddHost("h1")
	h2 := n.MustAddHost("h2")
	l, err := h2.Listen(80)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c.(*Conn)
	}()
	c, err := h1.Dial(context.Background(), "h2:80")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	s, ok := <-accepted
	if !ok {
		t.Fatal("Accept failed")
	}
	return c.(*Conn), s
}

func TestFaultErrorRateFailsWrites(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	client, _ := dialPair(t, n)

	n.SetFault("h1", "h2", Fault{ErrorRate: 1})
	if _, err := client.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", err)
	}

	// Faults are directed: the reverse direction is unaffected, and
	// clearing restores the faulted direction.
	n.ClearFault("h1", "h2")
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatalf("write after ClearFault: %v", err)
	}
}

func TestFaultExtraLatencyDelaysDelivery(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	client, server := dialPair(t, n)

	const extra = 150 * time.Millisecond
	n.SetFault("h1", "h2", Fault{ExtraLatency: extra})

	start := time.Now()
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if elapsed := time.Since(start); elapsed < extra {
		t.Fatalf("delivery took %v, want >= %v", elapsed, extra)
	}
}

func TestDropConnectionsSeversBothEnds(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	client, server := dialPair(t, n)

	if got := n.DropConnections("h1", "h2"); got != 1 {
		t.Fatalf("DropConnections = %d, want 1", got)
	}
	buf := make([]byte, 1)
	if _, err := client.Read(buf); err != io.EOF {
		t.Fatalf("client read err = %v, want EOF", err)
	}
	if _, err := server.Read(buf); err != io.EOF {
		t.Fatalf("server read err = %v, want EOF", err)
	}
	// The link itself is still up: a fresh dial succeeds.
	h1 := n.Host("h1")
	if _, err := h1.Dial(context.Background(), "h2:80"); err != nil {
		t.Fatalf("redial after DropConnections: %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	client, _ := dialPair(t, n)
	h1 := n.Host("h1")

	n.Partition("h1", "h2")
	buf := make([]byte, 1)
	if _, err := client.Read(buf); err != io.EOF {
		t.Fatalf("read on partitioned conn err = %v, want EOF", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	if _, err := h1.Dial(ctx, "h2:80"); err == nil {
		t.Fatal("dial across partition succeeded")
	}
	cancel()

	n.Heal("h1", "h2")
	c, err := h1.Dial(context.Background(), "h2:80")
	if err != nil {
		t.Fatalf("dial after Heal: %v", err)
	}
	c.Close()
}

func TestFaultDropRateIsOneWayForDatagrams(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1 := n.MustAddHost("h1")
	h2 := n.MustAddHost("h2")
	g1, err := h1.JoinGroup("ssdp")
	if err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	g2, err := h2.JoinGroup("ssdp")
	if err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}

	// Drop everything h1 sends toward h2, but not the reverse.
	n.SetFault("h1", "h2", Fault{DropRate: 1})

	if err := g1.Send([]byte("from-h1")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	g2.SetDeadline(time.Now().Add(100 * time.Millisecond))
	if d, err := g2.Recv(); err == nil && d.From == "h1" {
		t.Fatal("datagram crossed a DropRate=1 fault")
	}

	if err := g2.Send([]byte("from-h2")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	g1.SetDeadline(time.Now().Add(time.Second))
	for {
		d, err := g1.Recv()
		if err != nil {
			t.Fatalf("h1 never received h2's datagram: %v", err)
		}
		if d.From == "h2" {
			break
		}
	}
}
