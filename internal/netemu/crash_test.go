package netemu

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCrashNodeSeversEverything(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	client, server := dialPair(t, n)

	gc, err := n.Host("h2").JoinGroup("grp")
	if err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}

	dropped, err := n.CrashNode("h2")
	if err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	if dropped != 1 {
		t.Fatalf("CrashNode dropped %d memberships, want 1", dropped)
	}
	if n.Host("h2") != nil {
		t.Fatal("crashed host still registered")
	}

	// No goodbye traffic: the peer just sees the connection die.
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err == nil {
		t.Fatal("read on crashed host's conn succeeded")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := client.Write([]byte("x")); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write to crashed host never failed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := gc.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("group Recv after crash = %v, want ErrClosed", err)
	}

	// Survivors cannot dial the corpse.
	if _, err := n.Host("h1").Dial(context.Background(), "h2:80"); err == nil {
		t.Fatal("dial to crashed host succeeded")
	}

	if _, err := n.CrashNode("h2"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("second crash = %v, want ErrUnknownHost", err)
	}
}

func TestRestartNodeReusesName(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	n.MustAddHost("h1")
	n.MustAddHost("h2")

	if _, err := n.CrashNode("h2"); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	h2, err := n.RestartNode("h2")
	if err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	if h2.Name() != "h2" || n.Host("h2") != h2 {
		t.Fatal("restarted host not registered under its old name")
	}

	// The reborn host serves traffic like any fresh host.
	l, err := h2.Listen(80)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c, err := n.Host("h1").Dial(context.Background(), "h2:80")
	if err != nil {
		t.Fatalf("dial restarted host: %v", err)
	}
	c.Close()

	// Restarting a live host is a name collision.
	if _, err := n.RestartNode("h2"); !errors.Is(err, ErrHostExists) {
		t.Fatalf("restart of live host = %v, want ErrHostExists", err)
	}
}
