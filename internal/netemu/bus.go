package netemu

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// Datagram is a message received from a multicast group.
type Datagram struct {
	// From names the sending host.
	From string
	// Group is the group the datagram was sent to.
	Group string
	// Payload is the message body. The slice is owned by the receiver.
	Payload []byte
}

// GroupConn is a host's endpoint on a multicast group. It has UDP-like
// semantics: sends are unreliable (subject to LossRate and receiver
// buffer overflow) and delivered to every member of the group after the
// pairwise link latency.
type GroupConn struct {
	host  *Host
	group string
	net   *Network

	mu       sync.Mutex
	closed   bool
	inbox    chan Datagram
	deadline time.Time
}

// groupInboxSize bounds each member's receive queue; datagrams beyond it
// are dropped, as a real UDP socket would. Sized like an OS receive
// buffer (megabytes, not packets): in a segmented mesh a relay node
// absorbs whole-link bursts, and a shallow queue turns every burst into
// drops that the anti-entropy layer then repairs with far more traffic
// than the queue would have held.
const groupInboxSize = 4096

func (n *Network) joinGroup(h *Host, group string) (*GroupConn, error) {
	if group == "" {
		return nil, fmt.Errorf("netemu: empty group name")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	gc := &GroupConn{
		host:  h,
		group: group,
		net:   n,
		inbox: make(chan Datagram, groupInboxSize),
	}
	members, ok := n.groups[group]
	if !ok {
		members = make(map[*GroupConn]struct{})
		n.groups[group] = members
	}
	members[gc] = struct{}{}
	return gc, nil
}

// Host returns the owning host's name.
func (gc *GroupConn) Host() string { return gc.host.name }

// Group returns the group name.
func (gc *GroupConn) Group() string { return gc.group }

// Send multicasts payload to every member of the group, including the
// sender (matching IP multicast loopback, which SSDP relies on).
// Delivery is asynchronous; Send never blocks on receivers.
func (gc *GroupConn) Send(payload []byte) error {
	gc.mu.Lock()
	if gc.closed {
		gc.mu.Unlock()
		return ErrClosed
	}
	gc.mu.Unlock()

	n := gc.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	members := make([]*GroupConn, 0, len(n.groups[gc.group]))
	for m := range n.groups[gc.group] {
		members = append(members, m)
	}
	n.mu.Unlock()

	for _, m := range members {
		profile, down := n.linkBetween(gc.host.name, m.host.name)
		delay := profile.Latency + profile.transmitDuration(len(payload))
		if m.host.name != gc.host.name {
			if !n.reachable(gc.host.name, m.host.name) {
				continue
			}
			if down {
				continue
			}
			if n.rng.chance(profile.LossRate) {
				continue
			}
			if f, ok := n.fault(gc.host.name, m.host.name); ok {
				if n.rng.chance(f.DropRate) {
					continue
				}
				delay += f.ExtraLatency
			}
		}
		data := make([]byte, len(payload))
		copy(data, payload)
		d := Datagram{From: gc.host.name, Group: gc.group, Payload: data}
		if m.host.name == gc.host.name {
			delay = 0
		}
		m.deliverAfter(d, delay)
	}
	return nil
}

func (gc *GroupConn) deliverAfter(d Datagram, delay time.Duration) {
	deliver := func() {
		gc.mu.Lock()
		defer gc.mu.Unlock()
		if gc.closed {
			return
		}
		select {
		case gc.inbox <- d:
		default:
			// Receiver buffer full: drop, like UDP — but never
			// silently. The network-wide counter lets harnesses fail
			// loudly instead of reporting latency tails skewed by
			// losses they never saw.
			gc.net.groupDrops.Add(1)
		}
	}
	if delay <= 0 {
		deliver()
		return
	}
	time.AfterFunc(delay, deliver)
}

// Recv blocks for the next datagram, honoring the deadline set with
// SetDeadline. It returns ErrClosed after Close.
func (gc *GroupConn) Recv() (Datagram, error) {
	gc.mu.Lock()
	deadline := gc.deadline
	inbox := gc.inbox
	closed := gc.closed
	gc.mu.Unlock()
	if closed && len(inbox) == 0 {
		return Datagram{}, ErrClosed
	}

	if deadline.IsZero() {
		d, ok := <-inbox
		if !ok {
			return Datagram{}, ErrClosed
		}
		return d, nil
	}
	wait := time.Until(deadline)
	if wait <= 0 {
		select {
		case d, ok := <-inbox:
			if !ok {
				return Datagram{}, ErrClosed
			}
			return d, nil
		default:
			return Datagram{}, os.ErrDeadlineExceeded
		}
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case d, ok := <-inbox:
		if !ok {
			return Datagram{}, ErrClosed
		}
		return d, nil
	case <-t.C:
		return Datagram{}, os.ErrDeadlineExceeded
	}
}

// SetDeadline sets the deadline for future Recv calls. A zero value
// blocks indefinitely.
func (gc *GroupConn) SetDeadline(t time.Time) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	gc.deadline = t
}

// Close leaves the group and unblocks pending Recv calls.
func (gc *GroupConn) Close() error {
	n := gc.net
	n.mu.Lock()
	if members, ok := n.groups[gc.group]; ok {
		delete(members, gc)
		if len(members) == 0 {
			delete(n.groups, gc.group)
		}
	}
	n.mu.Unlock()
	gc.closeLocked()
	return nil
}

func (gc *GroupConn) closeLocked() {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if gc.closed {
		return
	}
	gc.closed = true
	close(gc.inbox)
}
