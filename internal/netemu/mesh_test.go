package netemu

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestUnsegmentedNetworkIsOneBus(t *testing.T) {
	n := NewNetwork(Unlimited())
	n.MustAddHost("a")
	n.MustAddHost("b")
	if n.Segmented() {
		t.Fatal("network with no links reports Segmented")
	}
	if !n.reachable("a", "b") {
		t.Fatal("hosts on an unsegmented network must be reachable")
	}
}

func TestChainTopologyReachability(t *testing.T) {
	n, err := NewMesh(Unlimited(), ChainTopology("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if !n.Segmented() {
		t.Fatal("mesh network not segmented")
	}
	for _, tc := range []struct {
		x, y string
		want bool
	}{
		{"a", "b", true},
		{"b", "c", true},
		{"a", "c", false},
		{"a", "a", true},
	} {
		if got := n.reachable(tc.x, tc.y); got != tc.want {
			t.Errorf("reachable(%s,%s) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
	if got := n.HostLinks("b"); len(got) != 2 {
		t.Fatalf("HostLinks(b) = %v, want 2 links", got)
	}
	if got := n.LinkMembers("seg0"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("LinkMembers(seg0) = %v", got)
	}
}

func TestStarTopologyReachability(t *testing.T) {
	n, err := NewMesh(Unlimited(), StarTopology("hub", "x", "y", "z"))
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range []string{"x", "y", "z"} {
		if !n.reachable("hub", leaf) {
			t.Errorf("hub cannot reach %s", leaf)
		}
	}
	if n.reachable("x", "y") {
		t.Error("leaves must not reach each other directly")
	}
}

func TestDialAcrossSegmentsFails(t *testing.T) {
	n, err := NewMesh(Unlimited(), ChainTopology("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	c := n.Host("c")
	if _, err := c.Listen(7); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Host("a").Dial(ctx, "c:7"); !errors.Is(err, ErrNoLink) {
		t.Fatalf("dial across segments: got %v, want ErrNoLink", err)
	}
	// Adjacent hosts still connect.
	if _, err := n.Host("b").Listen(7); err != nil {
		t.Fatal(err)
	}
	conn, err := n.Host("a").Dial(ctx, "b:7")
	if err != nil {
		t.Fatalf("dial adjacent host: %v", err)
	}
	conn.Close()
}

func TestGroupSendScopedToSharedLinks(t *testing.T) {
	n, err := NewMesh(Unlimited(), ChainTopology("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	join := func(host string) *GroupConn {
		gc, err := n.Host(host).JoinGroup("disc")
		if err != nil {
			t.Fatal(err)
		}
		return gc
	}
	ga, gb, gc := join("a"), join("b"), join("c")
	defer ga.Close()
	defer gb.Close()
	defer gc.Close()

	if err := ga.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	// b shares seg0 with a: must receive.
	gb.SetDeadline(time.Now().Add(time.Second))
	if d, err := gb.Recv(); err != nil || string(d.Payload) != "hello" {
		t.Fatalf("b recv: %v %q", err, d.Payload)
	}
	// c shares no link with a: must not receive.
	gc.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if d, err := gc.Recv(); err == nil {
		t.Fatalf("c received %q across segment boundary", d.Payload)
	}
}

func TestLinkMembershipSurvivesCrashRestart(t *testing.T) {
	n, err := NewMesh(Unlimited(), ChainTopology("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.CrashNode("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RestartNode("b"); err != nil {
		t.Fatal(err)
	}
	if !n.reachable("a", "b") || !n.reachable("b", "c") {
		t.Fatal("restarted host lost its link membership")
	}
	if n.reachable("a", "c") {
		t.Fatal("a and c became reachable after restart")
	}
}

func TestJoinLinkUnknownHost(t *testing.T) {
	n := NewNetwork(Unlimited())
	if err := n.JoinLink("ghost", "l0"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("JoinLink(ghost) = %v, want ErrUnknownHost", err)
	}
	if err := n.AddLink("", "x"); err == nil {
		t.Fatal("AddLink with empty link name succeeded")
	}
}
