package netemu

import (
	"sync"
	"time"
)

// medium models a shared half-duplex segment (the paper's 10 Mbps
// Ethernet hub): every frame between distinct hosts occupies the whole
// collision domain for its transmission time, so concurrent flows
// contend for the same bits per second.
type medium struct {
	mu       sync.Mutex
	bps      int64
	overhead int // per-frame framing overhead in bytes
	nextFree time.Time
}

// reserve claims the medium for n payload bytes and returns the
// transmission end time.
func (m *medium) reserve(n int) time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	start := m.nextFree
	if start.Before(now) {
		start = now
	}
	bits := int64(n+m.overhead) * 8
	end := start.Add(time.Duration(bits * int64(time.Second) / m.bps))
	m.nextFree = end
	return end
}

// SetSharedMedium switches the network into hub mode: all inter-host
// stream traffic shares one half-duplex segment of the given bandwidth,
// and each segment additionally pays overheadBytes of framing (Ethernet
// + IP + TCP headers ≈ 58 bytes per ~1500-byte frame). Per-link
// bandwidth shaping is bypassed for stream traffic while hub mode is on;
// latency and partitions still apply per link. Passing bps <= 0 turns
// hub mode off.
//
// The paper's testbed is three hosts on a 10 Mbps Ethernet hub, which is
// exactly this topology; the Figure 11 reproduction enables it.
func (n *Network) SetSharedMedium(bps int64, overheadBytes int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if bps <= 0 {
		n.medium = nil
		return
	}
	n.medium = &medium{bps: bps, overhead: overheadBytes}
}

// sharedMedium returns the active hub, or nil.
func (n *Network) sharedMedium() *medium {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.medium
}

// EthernetHubOverheadBytes approximates Ethernet (18) + IP (20) + TCP
// (20) header bytes per frame.
const EthernetHubOverheadBytes = 58
