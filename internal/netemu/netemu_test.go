package netemu

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestNetwork(t *testing.T, p LinkProfile) *Network {
	t.Helper()
	n := NewNetwork(p)
	t.Cleanup(func() { n.Close() })
	return n
}

func TestAddHostDuplicate(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	if _, err := n.AddHost("h1"); err != nil {
		t.Fatalf("AddHost: %v", err)
	}
	if _, err := n.AddHost("h1"); !errors.Is(err, ErrHostExists) {
		t.Fatalf("duplicate AddHost err = %v, want ErrHostExists", err)
	}
	if _, err := n.AddHost(""); err == nil {
		t.Fatal("empty host name accepted")
	}
}

func TestHostsSorted(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	for _, name := range []string{"c", "a", "b"} {
		n.MustAddHost(name)
	}
	got := n.Hosts()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Hosts() = %v, want %v", got, want)
		}
	}
}

func TestDialUnknownHost(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h := n.MustAddHost("h1")
	if _, err := h.Dial(context.Background(), "nowhere:80"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v, want ErrUnknownHost", err)
	}
}

func TestDialConnRefused(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1 := n.MustAddHost("h1")
	n.MustAddHost("h2")
	if _, err := h1.Dial(context.Background(), "h2:80"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestDialBadAddress(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1 := n.MustAddHost("h1")
	for _, addr := range []string{"h2", "h2:", "h2:abc", "h2:-1"} {
		if _, err := h1.Dial(context.Background(), addr); err == nil {
			t.Errorf("Dial(%q) succeeded, want error", addr)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	l, err := h2.Listen(7000)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer c.Close()
		io.Copy(c, c) // echo
	}()

	c, err := h1.Dial(context.Background(), "h2:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	msg := []byte("hello over the emulated wire")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
	c.Close()
	wg.Wait()
}

func TestStreamEOFAfterClose(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	l, _ := h2.Listen(7000)
	accepted := make(chan io.ReadWriteCloser, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	c, err := h1.Dial(context.Background(), "h2:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	srv := <-accepted
	if _, err := srv.Write([]byte("bye")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	srv.Close()
	data, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(data) != "bye" {
		t.Fatalf("data = %q, want %q", data, "bye")
	}
}

func TestStreamWriteAfterCloseFails(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	l, _ := h2.Listen(7000)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	c, err := h1.Dial(context.Background(), "h2:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	c.Close()
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("Write after close succeeded")
	}
}

func TestBandwidthShaping(t *testing.T) {
	// 1 Mbps link: sending 62_500 bytes (= 0.5 Mbit) should take ~0.5s.
	profile := LinkProfile{BandwidthBPS: 1_000_000}
	n := newTestNetwork(t, profile)
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	l, _ := h2.Listen(7000)

	const payload = 62_500
	done := make(chan time.Duration, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		start := time.Now()
		if _, err := io.CopyN(io.Discard, c, payload); err != nil {
			t.Errorf("CopyN: %v", err)
		}
		done <- time.Since(start)
	}()

	c, err := h1.Dial(context.Background(), "h2:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write(make([]byte, payload)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	elapsed := <-done
	if elapsed < 400*time.Millisecond || elapsed > 1500*time.Millisecond {
		t.Fatalf("transfer of 0.5 Mbit over 1 Mbps link took %v, want ~500ms", elapsed)
	}
}

func TestLatency(t *testing.T) {
	profile := LinkProfile{Latency: 50 * time.Millisecond}
	n := newTestNetwork(t, profile)
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	l, _ := h2.Listen(7000)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c)
	}()

	c, err := h1.Dial(context.Background(), "h2:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	rtt := time.Since(start)
	if rtt < 100*time.Millisecond {
		t.Fatalf("rtt = %v, want >= 100ms (2x 50ms one-way latency)", rtt)
	}
}

func TestReadDeadline(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	l, _ := h2.Listen(7000)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		_ = c // never writes
	}()
	c, err := h1.Dial(context.Background(), "h2:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = c.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read err = %v, want ErrDeadlineExceeded", err)
	}
	// Clearing the deadline makes reads block again (verified via timeout).
	c.SetReadDeadline(time.Time{})
}

func TestLinkDown(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	l, _ := h2.Listen(7000)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c
		}
	}()

	c, err := h1.Dial(context.Background(), "h2:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	n.SetLinkDown("h1", "h2", true)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Write err = %v, want ErrLinkDown", err)
	}
	if _, err := h1.Dial(context.Background(), "h2:7000"); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Dial err = %v, want ErrLinkDown", err)
	}

	n.SetLinkDown("h1", "h2", false)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("Write after heal: %v", err)
	}
}

func TestEphemeralListenPorts(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h := n.MustAddHost("h1")
	l1, err := h.Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	l2, err := h.Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if l1.Port() == l2.Port() {
		t.Fatalf("ephemeral ports collide: %d", l1.Port())
	}
	if _, err := h.Listen(l1.Port()); err == nil {
		t.Fatal("rebinding a bound port succeeded")
	}
	l1.Close()
	if _, err := h.Listen(l1.Port()); err != nil {
		t.Fatalf("rebinding after close: %v", err)
	}
	l2.Close()
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h := n.MustAddHost("h1")
	l, _ := h.Listen(7000)
	errs := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	if err := <-errs; !errors.Is(err, ErrClosed) {
		t.Fatalf("Accept err = %v, want ErrClosed", err)
	}
}

func TestMulticastBasic(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1, h2, h3 := n.MustAddHost("h1"), n.MustAddHost("h2"), n.MustAddHost("h3")
	g1, err := h1.JoinGroup("ssdp")
	if err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	g2, _ := h2.JoinGroup("ssdp")
	g3, _ := h3.JoinGroup("ssdp")
	defer g1.Close()
	defer g2.Close()
	defer g3.Close()

	if err := g1.Send([]byte("NOTIFY")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for _, gc := range []*GroupConn{g1, g2, g3} {
		gc.SetDeadline(time.Now().Add(time.Second))
		d, err := gc.Recv()
		if err != nil {
			t.Fatalf("Recv on %s: %v", gc.Host(), err)
		}
		if d.From != "h1" || string(d.Payload) != "NOTIFY" {
			t.Fatalf("datagram = %+v", d)
		}
	}
}

func TestMulticastGroupIsolation(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	ga, _ := h1.JoinGroup("a")
	gb, _ := h2.JoinGroup("b")
	defer ga.Close()
	defer gb.Close()
	ga.Send([]byte("x"))
	gb.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := gb.Recv(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("cross-group Recv err = %v, want deadline exceeded", err)
	}
}

func TestMulticastLinkDownDrops(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	g1, _ := h1.JoinGroup("g")
	g2, _ := h2.JoinGroup("g")
	defer g1.Close()
	defer g2.Close()
	n.SetLinkDown("h1", "h2", true)
	g1.Send([]byte("x"))
	g2.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := g2.Recv(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Recv over downed link err = %v, want deadline exceeded", err)
	}
}

func TestMulticastLoss(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	n.SetLink("h1", "h2", LinkProfile{LossRate: 1.0})
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	g1, _ := h1.JoinGroup("g")
	g2, _ := h2.JoinGroup("g")
	defer g1.Close()
	defer g2.Close()
	g1.Send([]byte("x"))
	g2.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := g2.Recv(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Recv with 100%% loss err = %v, want deadline exceeded", err)
	}
}

func TestGroupCloseUnblocksRecv(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	h := n.MustAddHost("h1")
	g, _ := h.JoinGroup("g")
	errs := make(chan error, 1)
	go func() {
		_, err := g.Recv()
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	g.Close()
	if err := <-errs; !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv err = %v, want ErrClosed", err)
	}
}

func TestNetworkCloseShutsEverything(t *testing.T) {
	n := NewNetwork(Unlimited())
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	l, _ := h2.Listen(7000)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c
		}
	}()
	c, err := h1.Dial(context.Background(), "h2:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	g, _ := h1.JoinGroup("g")
	n.Close()
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("Write on closed network succeeded")
	}
	if err := g.Send([]byte("x")); err == nil {
		t.Fatal("Send on closed network succeeded")
	}
	if _, err := n.AddHost("h3"); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddHost err = %v, want ErrClosed", err)
	}
}

func TestDialContextCancel(t *testing.T) {
	profile := LinkProfile{Latency: time.Second}
	n := newTestNetwork(t, profile)
	h1 := n.MustAddHost("h1")
	n.MustAddHost("h2")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := h1.Dial(ctx, "h2:7000")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Dial err = %v, want context deadline", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("Dial did not honor context cancellation promptly")
	}
}

// TestStreamConservation is a property test: any sequence of writes is
// received intact, in order, regardless of chunk sizes.
func TestStreamConservation(t *testing.T) {
	n := newTestNetwork(t, LinkProfile{BandwidthBPS: 500_000_000, MTU: 97})
	h1, h2 := n.MustAddHost("h1"), n.MustAddHost("h2")
	l, _ := h2.Listen(7000)
	type result struct {
		data []byte
		err  error
	}
	results := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			results <- result{err: err}
			return
		}
		data, err := io.ReadAll(c)
		results <- result{data: data, err: err}
	}()
	c, err := h1.Dial(context.Background(), "h2:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}

	var want bytes.Buffer
	chunkSizes := []int{1, 2, 3, 96, 97, 98, 1400, 4096, 0, 7}
	b := byte(0)
	for _, size := range chunkSizes {
		chunk := make([]byte, size)
		for i := range chunk {
			chunk[i] = b
			b++
		}
		want.Write(chunk)
		if _, err := c.Write(chunk); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	c.Close()
	r := <-results
	if r.err != nil {
		t.Fatalf("ReadAll: %v", r.err)
	}
	if !bytes.Equal(r.data, want.Bytes()) {
		t.Fatalf("received %d bytes, want %d; content mismatch", len(r.data), want.Len())
	}
}

// TestTransmitDurationProperty checks monotonicity and proportionality of
// the shaping computation.
func TestTransmitDurationProperty(t *testing.T) {
	f := func(nBytes uint16, bwKbps uint16) bool {
		p := LinkProfile{BandwidthBPS: int64(bwKbps)*1000 + 1000}
		d1 := p.transmitDuration(int(nBytes))
		d2 := p.transmitDuration(int(nBytes) * 2)
		if d1 < 0 || d2 < d1 {
			return false
		}
		// Proportionality within rounding: d2 ≈ 2*d1.
		diff := d2 - 2*d1
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransmitDurationUnlimited(t *testing.T) {
	p := LinkProfile{}
	if d := p.transmitDuration(1 << 20); d != 0 {
		t.Fatalf("unlimited link transmitDuration = %v, want 0", d)
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Host: "h1", Port: 80}
	if a.String() != "h1:80" {
		t.Fatalf("String() = %q", a.String())
	}
	if a.Network() != "netemu" {
		t.Fatalf("Network() = %q", a.Network())
	}
}

func TestSplitMixChance(t *testing.T) {
	r := newSplitMix64(1)
	if r.chance(0) {
		t.Fatal("chance(0) returned true")
	}
	if !r.chance(1) {
		t.Fatal("chance(1) returned false")
	}
	hits := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if r.chance(0.3) {
			hits++
		}
	}
	ratio := float64(hits) / trials
	if ratio < 0.25 || ratio > 0.35 {
		t.Fatalf("chance(0.3) ratio = %f", ratio)
	}
}

func TestSharedMediumContention(t *testing.T) {
	// Two concurrent flows across a 1 Mbps hub must share the medium:
	// each achieves roughly half the bandwidth. Loopback traffic is
	// exempt.
	n := newTestNetwork(t, LinkProfile{BandwidthBPS: 1_000_000})
	n.SetSharedMedium(1_000_000, 0)
	a, b, c := n.MustAddHost("a"), n.MustAddHost("b"), n.MustAddHost("c")

	const payload = 62_500 // 0.5 Mbit: alone ~0.5s; sharing ~1s each
	recv := func(h *Host, port int) chan time.Duration {
		l, err := h.Listen(port)
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		done := make(chan time.Duration, 1)
		go func() {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			start := time.Now()
			io.CopyN(io.Discard, conn, payload)
			done <- time.Since(start)
		}()
		return done
	}
	d1 := recv(b, 7001)
	d2 := recv(c, 7002)

	send := func(to string) {
		conn, err := a.Dial(context.Background(), to)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer conn.Close()
		conn.Write(make([]byte, payload))
	}
	go send("b:7001")
	go send("c:7002")

	e1, e2 := <-d1, <-d2
	// Combined 1 Mbit over a 1 Mbps medium: the slower flow needs ~1s.
	slowest := e1
	if e2 > slowest {
		slowest = e2
	}
	if slowest < 800*time.Millisecond {
		t.Fatalf("flows did not contend: %v / %v", e1, e2)
	}
}

func TestSharedMediumOverhead(t *testing.T) {
	// With 100% framing overhead the effective rate halves.
	n := newTestNetwork(t, LinkProfile{BandwidthBPS: 1_000_000, MTU: 1000})
	n.SetSharedMedium(1_000_000, 1000) // 1000B overhead per 1000B segment
	a, b := n.MustAddHost("a"), n.MustAddHost("b")
	l, _ := b.Listen(7000)
	done := make(chan time.Duration, 1)
	const payload = 31_250 // 0.25 Mbit -> 0.5 Mbit with overhead -> ~0.5s
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		start := time.Now()
		io.CopyN(io.Discard, conn, payload)
		done <- time.Since(start)
	}()
	conn, err := a.Dial(context.Background(), "b:7000")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	conn.Write(make([]byte, payload))
	if e := <-done; e < 400*time.Millisecond {
		t.Fatalf("overhead not applied: %v", e)
	}
}

func TestSharedMediumOff(t *testing.T) {
	n := newTestNetwork(t, Unlimited())
	n.SetSharedMedium(1000, 0)
	n.SetSharedMedium(0, 0) // off again
	if n.sharedMedium() != nil {
		t.Fatal("medium not cleared")
	}
}

// TestMulticastDeliveryProperty: with lossless links, every datagram
// sent to a group is delivered exactly once to every member (including
// the sender, matching IP multicast loopback).
func TestMulticastDeliveryProperty(t *testing.T) {
	f := func(nMembers uint8, nMsgs uint8) bool {
		members := int(nMembers%5) + 2
		msgs := int(nMsgs%8) + 1
		n := NewNetwork(Unlimited())
		defer n.Close()
		var conns []*GroupConn
		for i := 0; i < members; i++ {
			h := n.MustAddHost(string(rune('a' + i)))
			gc, err := h.JoinGroup("g")
			if err != nil {
				return false
			}
			conns = append(conns, gc)
		}
		for i := 0; i < msgs; i++ {
			if err := conns[0].Send([]byte{byte(i)}); err != nil {
				return false
			}
		}
		for _, gc := range conns {
			seen := make(map[byte]int)
			gc.SetDeadline(time.Now().Add(2 * time.Second))
			for i := 0; i < msgs; i++ {
				d, err := gc.Recv()
				if err != nil {
					return false
				}
				seen[d.Payload[0]]++
			}
			for i := 0; i < msgs; i++ {
				if seen[byte(i)] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
