package netemu

import (
	"fmt"
	"sort"
)

// Multi-link topologies. By default a Network is one broadcast domain:
// every host can dial every other host and multicast datagrams reach all
// group members. Declaring named links partitions the network into
// segments — a host can only exchange traffic (streams and datagrams)
// with hosts it shares at least one link with. A host may sit on several
// links, making it a potential relay between segments; routing across
// segments is the overlay's job (directory adverts + transport
// forwarding), not the emulator's.
//
// Link membership is keyed by host name, modeling physical wiring: it
// survives CrashNode/RestartNode, just as a rebooted machine comes back
// on the same cables.

// Topology maps link names to the hosts attached to each link. A host
// may appear on any number of links.
type Topology map[string][]string

// ChainTopology wires hosts into a chain of two-host links:
// hosts[0]—hosts[1]—…—hosts[n-1]. Adjacent hosts share a link; traffic
// between non-adjacent hosts must be relayed.
func ChainTopology(hosts ...string) Topology {
	topo := make(Topology, len(hosts))
	for i := 0; i+1 < len(hosts); i++ {
		topo[fmt.Sprintf("seg%d", i)] = []string{hosts[i], hosts[i+1]}
	}
	return topo
}

// StarTopology wires each leaf to the hub over its own link. Leaves
// cannot reach each other directly; the hub sits on every link.
func StarTopology(hub string, leaves ...string) Topology {
	topo := make(Topology, len(leaves))
	for _, leaf := range leaves {
		topo["star-"+leaf] = []string{hub, leaf}
	}
	return topo
}

// NewMesh creates a segmented network from a topology: every host named
// in the topology is registered and joined to its links. All pairs use
// the default link profile unless overridden with SetLink.
func NewMesh(defaultLink LinkProfile, topo Topology) (*Network, error) {
	n := NewNetwork(defaultLink)
	links := make([]string, 0, len(topo))
	for link := range topo {
		links = append(links, link)
	}
	sort.Strings(links)
	for _, link := range links {
		for _, host := range topo[link] {
			if n.Host(host) == nil {
				if _, err := n.AddHost(host); err != nil {
					return nil, err
				}
			}
			if err := n.JoinLink(host, link); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

// AddLink declares a named link and attaches the given hosts to it.
// Every host must already be registered. Calling AddLink on an existing
// link extends its membership.
func (n *Network) AddLink(link string, hosts ...string) error {
	for _, h := range hosts {
		if err := n.JoinLink(h, link); err != nil {
			return err
		}
	}
	return nil
}

// JoinLink attaches a registered host to a named link, creating the link
// if needed. The first JoinLink call on a network switches it from the
// single-bus default to segmented reachability.
func (n *Network) JoinLink(host, link string) error {
	if link == "" {
		return fmt.Errorf("netemu: empty link name")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if _, ok := n.hosts[host]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	if n.segments == nil {
		n.segments = make(map[string]map[string]struct{})
		n.hostLinks = make(map[string]map[string]struct{})
	}
	members, ok := n.segments[link]
	if !ok {
		members = make(map[string]struct{})
		n.segments[link] = members
	}
	members[host] = struct{}{}
	joined, ok := n.hostLinks[host]
	if !ok {
		joined = make(map[string]struct{})
		n.hostLinks[host] = joined
	}
	joined[link] = struct{}{}
	return nil
}

// HostLinks returns the names of the links a host sits on, sorted. Nil
// on an unsegmented network.
func (n *Network) HostLinks(host string) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.hostLinks[host]) == 0 {
		return nil
	}
	links := make([]string, 0, len(n.hostLinks[host]))
	for l := range n.hostLinks[host] {
		links = append(links, l)
	}
	sort.Strings(links)
	return links
}

// LinkMembers returns the hosts attached to a link, sorted.
func (n *Network) LinkMembers(link string) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.segments[link]) == 0 {
		return nil
	}
	hosts := make([]string, 0, len(n.segments[link]))
	for h := range n.segments[link] {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// Segmented reports whether any link has been declared, i.e. whether
// reachability is link-scoped rather than the single-bus default.
func (n *Network) Segmented() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.segments) > 0
}

// reachable reports whether a and b share a broadcast domain: always on
// an unsegmented network, otherwise only when they sit on a common link.
// A host is always reachable from itself (loopback).
func (n *Network) reachable(a, b string) bool {
	if a == b {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reachableLocked(a, b)
}

func (n *Network) reachableLocked(a, b string) bool {
	if len(n.segments) == 0 {
		return true
	}
	la, lb := n.hostLinks[a], n.hostLinks[b]
	if len(la) > len(lb) {
		la, lb = lb, la
	}
	for l := range la {
		if _, ok := lb[l]; ok {
			return true
		}
	}
	return false
}
