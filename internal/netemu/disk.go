package netemu

import (
	"fmt"
	"io"
	"sync"
)

// Disk is a host's in-memory persistent storage: a flat namespace of
// named files that survives CrashNode/RestartNode. It models the one
// thing an abrupt power loss does NOT destroy — bytes already handed to
// stable storage — so durability layers (internal/wal) can be exercised
// under emulated crashes exactly as they would be against a real disk.
//
// Disks are keyed by host name on the Network and are never removed by
// CrashNode; a restarted node asks for the same Disk and replays what
// its predecessor wrote. Files implement the wal.File contract
// (io.ReadWriteSeeker + Truncate + Sync + Close) structurally.
type Disk struct {
	mu    sync.Mutex
	files map[string]*memFileData
}

// memFileData is the durable content of one file, shared by every
// MemFile handle ever opened on it (a reopened file sees prior writes,
// like an inode).
type memFileData struct {
	mu    sync.Mutex
	data  []byte
	syncs uint64
}

// MemFile is an open handle on a Disk file: an offset cursor over the
// shared durable content. Closing the handle does not discard the data.
type MemFile struct {
	d   *memFileData
	off int64
	mu  sync.Mutex
	// closed handles keep working for reads in some OS file semantics;
	// we are stricter — all ops fail after Close, matching *os.File.
	closed bool
}

// Disk returns the named host's disk, creating it on first use. Unlike
// Host handles, disks survive CrashNode and Network.Close: they model
// non-volatile storage, and tests read them post-mortem.
func (n *Network) Disk(host string) *Disk {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.disks == nil {
		n.disks = make(map[string]*Disk)
	}
	d, ok := n.disks[host]
	if !ok {
		d = &Disk{files: make(map[string]*memFileData)}
		n.disks[host] = d
	}
	return d
}

// Open returns a handle on the named file, creating it empty if absent.
// The cursor starts at offset 0 (a durability log replays from the top).
func (d *Disk) Open(name string) *MemFile {
	d.mu.Lock()
	defer d.mu.Unlock()
	fd, ok := d.files[name]
	if !ok {
		fd = &memFileData{}
		d.files[name] = fd
	}
	return &MemFile{d: fd}
}

// Remove deletes a file's durable content. Open handles keep their
// (now orphaned) data, as with POSIX unlink.
func (d *Disk) Remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
}

// Files returns the names of all files on the disk.
func (d *Disk) Files() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	return names
}

// Size returns the durable size of a named file, or -1 if absent.
func (d *Disk) Size(name string) int64 {
	d.mu.Lock()
	fd, ok := d.files[name]
	d.mu.Unlock()
	if !ok {
		return -1
	}
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return int64(len(fd.data))
}

func (f *MemFile) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("netemu: read on closed MemFile")
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if f.off >= int64(len(f.d.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *MemFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("netemu: write on closed MemFile")
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	end := f.off + int64(len(p))
	if end > int64(len(f.d.data)) {
		grown := make([]byte, end)
		copy(grown, f.d.data)
		f.d.data = grown
	}
	copy(f.d.data[f.off:end], p)
	f.off = end
	return len(p), nil
}

func (f *MemFile) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("netemu: seek on closed MemFile")
	}
	f.d.mu.Lock()
	size := int64(len(f.d.data))
	f.d.mu.Unlock()
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = f.off + offset
	case io.SeekEnd:
		abs = size + offset
	default:
		return 0, fmt.Errorf("netemu: invalid seek whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("netemu: negative seek offset")
	}
	f.off = abs
	return abs, nil
}

func (f *MemFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("netemu: truncate on closed MemFile")
	}
	if size < 0 {
		return fmt.Errorf("netemu: negative truncate size")
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	switch {
	case size <= int64(len(f.d.data)):
		f.d.data = f.d.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, f.d.data)
		f.d.data = grown
	}
	return nil
}

// Sync is a no-op beyond counting: memory is already "stable storage"
// here. The count lets tests assert a durability layer fsyncs at the
// promised points.
func (f *MemFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("netemu: sync on closed MemFile")
	}
	f.d.mu.Lock()
	f.d.syncs++
	f.d.mu.Unlock()
	return nil
}

func (f *MemFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	return nil
}

// Syncs reports how many times any handle on the named file was synced.
func (d *Disk) Syncs(name string) uint64 {
	d.mu.Lock()
	fd, ok := d.files[name]
	d.mu.Unlock()
	if !ok {
		return 0
	}
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.syncs
}
