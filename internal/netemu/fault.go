package netemu

import (
	"errors"
	"time"
)

// ErrInjected is returned by stream writes that an injected fault failed.
var ErrInjected = errors.New("netemu: injected fault")

// Fault describes deterministic failure characteristics injected on one
// direction of traffic between two hosts. Faults compose with the link
// profile: latency adds to the profile's propagation delay, and rates
// draw from the network's seeded PRNG so runs are reproducible.
type Fault struct {
	// ExtraLatency is added one-way to every stream segment and datagram.
	ExtraLatency time.Duration
	// ErrorRate fails each stream segment write with ErrInjected with
	// this probability [0,1].
	ErrorRate float64
	// DropRate drops each datagram with this probability [0,1], in
	// addition to the link's LossRate.
	DropRate float64
}

// directedPair keys faults by traffic direction (from -> to).
type directedPair struct{ from, to string }

// SetFault injects a fault on traffic flowing from one host to another
// (one direction only; set both directions explicitly for a symmetric
// fault). A zero Fault clears any previous injection.
func (n *Network) SetFault(from, to string, f Fault) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.faults == nil {
		n.faults = make(map[directedPair]Fault)
	}
	if f == (Fault{}) {
		delete(n.faults, directedPair{from, to})
		return
	}
	n.faults[directedPair{from, to}] = f
}

// ClearFault removes a directed fault.
func (n *Network) ClearFault(from, to string) {
	n.SetFault(from, to, Fault{})
}

// fault returns the active fault for a traffic direction, if any.
func (n *Network) fault(from, to string) (Fault, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	f, ok := n.faults[directedPair{from, to}]
	return f, ok
}

// DropConnections severs every established stream connection between two
// hosts, in both directions, and returns the number of connections
// dropped. Readers on both ends observe EOF (after draining in-flight
// data) and writers observe a closed stream — the emulator's equivalent
// of a TCP reset, used to test reconnection logic deterministically.
func (n *Network) DropConnections(a, b string) int {
	count := 0
	if h := n.Host(a); h != nil {
		count = h.dropConnsTo(b)
	}
	if a != b {
		if h := n.Host(b); h != nil {
			h.dropConnsTo(a)
		}
	}
	return count
}

// dropConnsTo closes this host's established connections whose remote
// endpoint is the named host, returning how many were closed.
func (h *Host) dropConnsTo(peer string) int {
	h.mu.Lock()
	var victims []*Conn
	for c := range h.conns {
		if c.remote.Host == peer {
			victims = append(victims, c)
		}
	}
	h.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	return len(victims)
}

// Partition takes the link between two hosts down and severs every
// established stream connection between them, so the failure is observed
// immediately rather than on the next write. Dials, stream writes, and
// datagrams between the hosts fail until Heal is called.
func (n *Network) Partition(a, b string) {
	n.SetLinkDown(a, b, true)
	n.DropConnections(a, b)
}

// Heal restores the link between two partitioned hosts. Severed
// connections stay severed; endpoints reconnect on their own schedule.
func (n *Network) Heal(a, b string) {
	n.SetLinkDown(a, b, false)
}
