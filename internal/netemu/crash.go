package netemu

import "fmt"

// CrashNode abruptly removes a host from the network, modeling the
// machine losing power: every listener and established stream connection
// is torn down, every multicast group membership vanishes, and — unlike a
// graceful shutdown — no goodbye traffic of any kind is emitted. Remote
// peers only notice through broken connections and lease lapse, which is
// exactly what liveness detection must handle. The name becomes free for
// RestartNode. Returns the number of group memberships dropped.
func (n *Network) CrashNode(name string) (int, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, ErrClosed
	}
	h, ok := n.hosts[name]
	if !ok {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	delete(n.hosts, name)
	var victims []*GroupConn
	for group, members := range n.groups {
		for gc := range members {
			if gc.host == h {
				victims = append(victims, gc)
				delete(members, gc)
			}
		}
		if len(members) == 0 {
			delete(n.groups, group)
		}
	}
	n.mu.Unlock()

	// Teardown happens outside n.mu: closing conns wakes readers that may
	// immediately re-enter the network (redial loops, group sends).
	h.close()
	for _, gc := range victims {
		gc.closeLocked()
	}
	return len(victims), nil
}

// RestartNode re-registers a previously crashed host under the same name,
// modeling the machine rebooting. It is AddHost with intent: the caller
// gets a fresh Host and must bring up a fresh software stack on it — the
// crashed stack's handles stay dead.
func (n *Network) RestartNode(name string) (*Host, error) {
	h, err := n.AddHost(name)
	if err != nil {
		return nil, fmt.Errorf("netemu: restart %q: %w", name, err)
	}
	return h, nil
}
