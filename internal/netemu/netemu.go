// Package netemu provides an in-process network emulator used as the
// physical substrate for every emulated communication platform in this
// repository.
//
// The paper's testbed is three ThinkPads joined by a 10 Mbps Ethernet hub,
// plus Bluetooth radios. Neither is available here, so netemu supplies the
// closest synthetic equivalent: named virtual hosts joined by duplex links
// with token-bucket bandwidth shaping and propagation latency, a multicast
// datagram bus for discovery protocols (SSDP, Bluetooth inquiry), and
// fault injection (link down, loss). Links expose net.Conn and
// net.Listener so protocol code is written exactly as it would be against
// a real network.
package netemu

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Common errors returned by the emulator.
var (
	// ErrHostExists is returned when registering a duplicate host name.
	ErrHostExists = errors.New("netemu: host already exists")
	// ErrUnknownHost is returned when dialing a host that was never registered.
	ErrUnknownHost = errors.New("netemu: unknown host")
	// ErrConnRefused is returned when no listener is bound to the target port.
	ErrConnRefused = errors.New("netemu: connection refused")
	// ErrLinkDown is returned when traffic is sent over a partitioned link.
	ErrLinkDown = errors.New("netemu: link down")
	// ErrNoLink is returned when two hosts on a segmented network share no
	// link: they can only communicate through a relaying host.
	ErrNoLink = errors.New("netemu: hosts share no link")
	// ErrClosed is returned when using a closed network, host, or listener.
	ErrClosed = errors.New("netemu: closed")
)

// LinkProfile describes the characteristics of one direction of a link.
type LinkProfile struct {
	// BandwidthBPS is the link bandwidth in bits per second. Zero means
	// unlimited (no shaping).
	BandwidthBPS int64
	// Latency is the one-way propagation delay added to every byte.
	Latency time.Duration
	// BufferBytes bounds the number of in-flight (queued but undelivered)
	// bytes per direction; writers block when the buffer is full, which
	// provides backpressure. Zero selects DefaultBufferBytes.
	BufferBytes int
	// MTU is the maximum segment size used when pacing writes. Zero
	// selects DefaultMTU. Smaller MTUs smooth pacing at a small CPU cost.
	MTU int
	// LossRate drops a fraction [0,1) of datagrams on the multicast bus.
	// Stream links are lossless (they model TCP).
	LossRate float64
}

// Default shaping parameters.
const (
	// DefaultBufferBytes is the per-direction in-flight byte cap.
	DefaultBufferBytes = 256 << 10
	// DefaultMTU is the pacing segment size.
	DefaultMTU = 1500
)

// Ethernet10Mbps mirrors the paper's 10 Mbps hub: the benchmarks in
// Section 5.3 report a 7.9 Mbps TCP baseline on this link.
func Ethernet10Mbps() LinkProfile {
	return LinkProfile{BandwidthBPS: 10_000_000, Latency: 500 * time.Microsecond}
}

// Bluetooth1_2 approximates a Bluetooth 1.2 ACL link (~723 kbps asymmetric
// peak, a few ms of latency), matching the paper's Bluetooth testbed.
func Bluetooth1_2() LinkProfile {
	return LinkProfile{BandwidthBPS: 723_000, Latency: 5 * time.Millisecond}
}

// Unlimited returns a profile with no shaping, for tests that only need
// connectivity.
func Unlimited() LinkProfile { return LinkProfile{} }

func (p LinkProfile) normalized() LinkProfile {
	if p.BufferBytes <= 0 {
		p.BufferBytes = DefaultBufferBytes
	}
	if p.MTU <= 0 {
		p.MTU = DefaultMTU
	}
	return p
}

// transmitDuration returns how long n bytes occupy the link.
func (p LinkProfile) transmitDuration(n int) time.Duration {
	if p.BandwidthBPS <= 0 || n <= 0 {
		return 0
	}
	bits := int64(n) * 8
	return time.Duration(bits * int64(time.Second) / p.BandwidthBPS)
}

type hostPair struct{ a, b string }

func makePair(x, y string) hostPair {
	if x > y {
		x, y = y, x
	}
	return hostPair{a: x, b: y}
}

// Network is a virtual network of named hosts. The zero value is not
// usable; construct with NewNetwork.
type Network struct {
	mu          sync.Mutex
	defaultLink LinkProfile
	hosts       map[string]*Host
	links       map[hostPair]LinkProfile
	segments    map[string]map[string]struct{} // link name -> member host names
	hostLinks   map[string]map[string]struct{} // host name -> link names
	down        map[hostPair]bool
	faults      map[directedPair]Fault
	groups      map[string]map[*GroupConn]struct{}
	medium      *medium
	spinWin     time.Duration // read-pacing spin window; <0 disables
	closed      bool
	rng         *splitMix64
	// disks models per-host non-volatile storage; entries survive
	// CrashNode/RestartNode and Network.Close (see Disk).
	disks map[string]*Disk
	// groupDrops counts datagrams discarded because a member's group
	// inbox was full — the silent UDP-like loss point load harnesses
	// must check instead of letting it skew latency tails.
	groupDrops atomic.Uint64
}

// GroupDrops returns the number of group datagrams dropped network-wide
// because a receiving member's inbox was full. Intentional losses
// (LossRate, faults, partitions) are not counted — this isolates the
// overflow signal that indicates a consumer fell behind the offered
// multicast rate.
func (n *Network) GroupDrops() uint64 { return n.groupDrops.Load() }

// SetSpinWindow overrides DefaultSpinWindow for this network's streams.
// Zero restores the default; a negative value disables spinning entirely
// (every paced read sleeps on a timer, trading RTT precision for CPU).
func (n *Network) SetSpinWindow(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.spinWin = d
}

// spinWindow returns the effective spin window. Safe on a nil network
// (standalone streams never spin).
func (n *Network) spinWindow() time.Duration {
	if n == nil {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	switch {
	case n.spinWin < 0:
		return 0
	case n.spinWin == 0:
		return DefaultSpinWindow
	default:
		return n.spinWin
	}
}

// NewNetwork creates a network whose host pairs default to the given link
// profile unless overridden with SetLink.
func NewNetwork(defaultLink LinkProfile) *Network {
	return &Network{
		defaultLink: defaultLink.normalized(),
		hosts:       make(map[string]*Host),
		links:       make(map[hostPair]LinkProfile),
		down:        make(map[hostPair]bool),
		groups:      make(map[string]map[*GroupConn]struct{}),
		rng:         newSplitMix64(0x9e3779b97f4a7c15),
	}
}

// AddHost registers a new host on the network.
func (n *Network) AddHost(name string) (*Host, error) {
	if name == "" {
		return nil, fmt.Errorf("netemu: empty host name")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.hosts[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrHostExists, name)
	}
	h := &Host{
		name:      name,
		net:       n,
		listeners: make(map[int]*Listener),
	}
	n.hosts[name] = h
	return h, nil
}

// MustAddHost is AddHost that panics on error; for tests and examples.
func (n *Network) MustAddHost(name string) *Host {
	h, err := n.AddHost(name)
	if err != nil {
		panic(err)
	}
	return h
}

// Host returns a previously registered host, or nil.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[name]
}

// Hosts returns the names of all registered hosts, sorted.
func (n *Network) Hosts() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	names := make([]string, 0, len(n.hosts))
	for name := range n.hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SetLink overrides the link profile between two hosts (both directions).
func (n *Network) SetLink(a, b string, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[makePair(a, b)] = p.normalized()
}

// SetLinkDown partitions (or heals) the link between two hosts. While a
// link is down, dials fail, stream writes return ErrLinkDown, and
// datagrams between the hosts are dropped.
func (n *Network) SetLinkDown(a, b string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[makePair(a, b)] = down
}

// linkBetween returns the effective profile and partition state.
func (n *Network) linkBetween(a, b string) (LinkProfile, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	pair := makePair(a, b)
	p, ok := n.links[pair]
	if !ok {
		p = n.defaultLink
	}
	return p, n.down[pair]
}

func (n *Network) linkDown(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[makePair(a, b)]
}

// Close shuts down the network: all hosts, listeners, and group
// connections are closed. Established stream connections are closed too.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	groups := n.groups
	n.groups = make(map[string]map[*GroupConn]struct{})
	n.mu.Unlock()

	for _, h := range hosts {
		h.close()
	}
	for _, members := range groups {
		for gc := range members {
			gc.closeLocked()
		}
	}
	return nil
}

// Host is a named endpoint on a Network.
type Host struct {
	name string
	net  *Network

	mu        sync.Mutex
	listeners map[int]*Listener
	conns     map[*Conn]struct{}
	nextPort  int
	closed    bool
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// Listen binds a stream listener on the given port. Port 0 selects an
// ephemeral port.
func (h *Host) Listen(port int) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if port == 0 {
		if h.nextPort == 0 {
			h.nextPort = 49152
		}
		for {
			h.nextPort++
			if _, ok := h.listeners[h.nextPort]; !ok {
				port = h.nextPort
				break
			}
		}
	}
	if _, ok := h.listeners[port]; ok {
		return nil, fmt.Errorf("netemu: port %d on %q already bound", port, h.name)
	}
	l := &Listener{
		host:    h,
		port:    port,
		backlog: make(chan *Conn, 64),
		done:    make(chan struct{}),
	}
	h.listeners[port] = l
	return l, nil
}

// Dial connects to "host:port" on the same network, honoring ctx
// cancellation and the link's propagation latency.
func (h *Host) Dial(ctx context.Context, address string) (net.Conn, error) {
	target, port, err := splitAddress(address)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	hostClosed := h.closed
	h.mu.Unlock()
	if hostClosed {
		return nil, fmt.Errorf("netemu: dial %s: %w", address, ErrClosed)
	}
	peer := h.net.Host(target)
	if peer == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, target)
	}
	if !h.net.reachable(h.name, target) {
		return nil, fmt.Errorf("netemu: dial %s: %w", address, ErrNoLink)
	}
	profile, down := h.net.linkBetween(h.name, target)
	if down {
		return nil, fmt.Errorf("netemu: dial %s: %w", address, ErrLinkDown)
	}

	// Model connection establishment as one round trip.
	if rtt := 2 * profile.Latency; rtt > 0 {
		t := time.NewTimer(rtt)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	peer.mu.Lock()
	l, ok := peer.listeners[port]
	peer.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netemu: dial %s: %w", address, ErrConnRefused)
	}

	clientConn, serverConn := newConnPair(h, peer, port, profile)
	select {
	case l.backlog <- serverConn:
	case <-l.done:
		clientConn.Close()
		serverConn.Close()
		return nil, fmt.Errorf("netemu: dial %s: %w", address, ErrConnRefused)
	case <-ctx.Done():
		clientConn.Close()
		serverConn.Close()
		return nil, ctx.Err()
	}
	h.track(clientConn)
	peer.track(serverConn)
	return clientConn, nil
}

func (h *Host) track(c *Conn) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.conns == nil {
		h.conns = make(map[*Conn]struct{})
	}
	h.conns[c] = struct{}{}
}

func (h *Host) untrack(c *Conn) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.conns, c)
}

func (h *Host) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	listeners := make([]*Listener, 0, len(h.listeners))
	for _, l := range h.listeners {
		listeners = append(listeners, l)
	}
	conns := make([]*Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// JoinGroup subscribes the host to a named multicast group and returns a
// datagram endpoint for it.
func (h *Host) JoinGroup(group string) (*GroupConn, error) {
	return h.net.joinGroup(h, group)
}

// Listener accepts stream connections on a host port.
type Listener struct {
	host    *Host
	port    int
	backlog chan *Conn

	closeOnce sync.Once
	done      chan struct{}
}

var _ net.Listener = (*Listener)(nil)

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close unbinds the listener. Established connections are unaffected.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.host.mu.Lock()
		delete(l.host.listeners, l.port)
		l.host.mu.Unlock()
	})
	return nil
}

// Addr returns the listener's address.
func (l *Listener) Addr() net.Addr {
	return Addr{Host: l.host.name, Port: l.port}
}

// Port returns the bound port.
func (l *Listener) Port() int { return l.port }

// Addr is the net.Addr implementation used by the emulator.
type Addr struct {
	Host string
	Port int
}

var _ net.Addr = Addr{}

// Network returns the synthetic network name.
func (Addr) Network() string { return "netemu" }

// String renders "host:port".
func (a Addr) String() string { return net.JoinHostPort(a.Host, strconv.Itoa(a.Port)) }

func splitAddress(address string) (host string, port int, err error) {
	i := strings.LastIndexByte(address, ':')
	if i < 0 {
		return "", 0, fmt.Errorf("netemu: address %q missing port", address)
	}
	host = address[:i]
	port, err = strconv.Atoi(address[i+1:])
	if err != nil || port <= 0 {
		return "", 0, fmt.Errorf("netemu: address %q has invalid port", address)
	}
	return host, port, nil
}

// splitMix64 is a tiny deterministic PRNG used for datagram loss so the
// emulator has no dependency on math/rand global state.
type splitMix64 struct {
	mu    sync.Mutex
	state uint64
}

func newSplitMix64(seed uint64) *splitMix64 { return &splitMix64{state: seed} }

func (s *splitMix64) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance returns true with probability p.
func (s *splitMix64) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(s.next()>>11)/(1<<53) < p
}
