// Command usdlc validates and summarizes USDL documents (Universal
// Service Description Language, paper Section 3.4).
//
// Usage:
//
//	usdlc file.xml [file2.xml ...]   validate files and print shapes
//	usdlc -builtin                   list the built-in device vocabulary
//	usdlc -dump <name-substring>     print a built-in document's XML
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/usdl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "usdlc:", err)
		os.Exit(1)
	}
}

func run() error {
	builtin := flag.Bool("builtin", false, "list built-in USDL documents")
	dump := flag.String("dump", "", "print the built-in document whose service name contains the substring")
	flag.Parse()

	switch {
	case *builtin:
		return listBuiltins()
	case *dump != "":
		return dumpBuiltin(*dump)
	case flag.NArg() == 0:
		flag.Usage()
		return fmt.Errorf("no input files")
	}
	failed := 0
	for _, path := range flag.Args() {
		if err := checkFile(path); err != nil {
			fmt.Printf("%s: INVALID: %v\n", path, err)
			failed++
			continue
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d file(s) invalid", failed)
	}
	return nil
}

func checkFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	doc, err := usdl.Parse(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: OK (%d service(s))\n", path, len(doc.Services))
	for i := range doc.Services {
		printService(&doc.Services[i])
	}
	return nil
}

func listBuiltins() error {
	reg, err := usdl.DefaultRegistry()
	if err != nil {
		return err
	}
	for _, svc := range reg.Services() {
		svc := svc
		printService(&svc)
	}
	return nil
}

func printService(svc *usdl.Service) {
	fmt.Printf("  service %q platform=%s match=%s\n", svc.Name, svc.Platform, svc.Match.Key())
	shape, err := svc.Shape()
	if err != nil {
		fmt.Printf("    shape error: %v\n", err)
		return
	}
	for _, p := range shape.Ports() {
		bound := ""
		if def, ok := svc.PortDef(p.Name); ok && def.Bind != nil {
			bound = "  -> " + def.Bind.Action
			if def.Bind.Result != "" {
				bound += " (result on " + def.Bind.Result + ")"
			}
		}
		fmt.Printf("    %-14s %-8s %-6s %-24s%s\n", p.Name, p.Kind, p.Direction, p.Type, bound)
	}
	for _, e := range svc.Events {
		fmt.Printf("    event %-22s -> %s\n", e.Native, e.Port)
	}
}

func dumpBuiltin(substr string) error {
	for _, text := range usdl.BuiltinDocuments() {
		doc, err := usdl.ParseString(text)
		if err != nil {
			return err
		}
		for _, svc := range doc.Services {
			if strings.Contains(strings.ToLower(svc.Name), strings.ToLower(substr)) {
				fmt.Println(text)
				return nil
			}
		}
	}
	return fmt.Errorf("no built-in document matching %q", substr)
}
