// Command pads is the CLI edition of uMiddle Pads (paper Section 4.1):
// a device-composition application generator with cross-platform
// "virtual cabling". It boots a demo world (UPnP TV and light, Bluetooth
// camera and printer, plus native uMiddle services), shows the
// intermediary semantic space as a board of pads, and interprets wiring
// commands from a script or stdin.
//
// Usage:
//
//	pads [-script 'cmd; cmd; ...'] [-settle 2s]
//
// Commands:
//
//	list                          show pads and wires
//	stats                         show metrics and recent trace events
//	health                        show mapper, lease, and path states
//	persist                       show durability log and replay state
//	wire padN#port padM#port      draw a cable between two ports
//	wire padN#port accepting <mime> [physical]
//	                              draw a template cable (dynamic binding)
//	unwire <wireID>               remove a cable
//	send padN#port <text>         emit a message from a local pad
//	quit                          exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/pads"
	"repro/internal/platform/bluetooth"
	"repro/internal/platform/upnp"
	"repro/umiddle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pads:", err)
		os.Exit(1)
	}
}

func run() error {
	script := flag.String("script", "", "semicolon-separated commands to run instead of a REPL")
	settle := flag.Duration("settle", 2*time.Second, "time to wait for device discovery before starting")
	flag.Parse()

	net := umiddle.NewEmulatedNetwork()
	defer net.Close()
	rt, err := umiddle.NewRuntime(umiddle.RuntimeConfig{Node: "pads-node", Network: net})
	if err != nil {
		return err
	}
	defer rt.Close()
	if err := rt.AddUPnPMapper(umiddle.UPnPMapperConfig{SearchInterval: 300 * time.Millisecond}); err != nil {
		return err
	}
	if err := rt.AddBluetoothMapper(umiddle.BluetoothMapperConfig{
		InquiryInterval: 300 * time.Millisecond,
		InquiryWindow:   150 * time.Millisecond,
	}); err != nil {
		return err
	}

	// Demo devices, as in the paper's Figure 8 population (scaled down).
	tv := upnp.NewMediaRenderer(net.MustAddHost("tv-dev"), "tv-1", "Living Room TV", upnp.DeviceOptions{})
	if err := tv.Publish(); err != nil {
		return err
	}
	defer tv.Unpublish()
	light := upnp.NewBinaryLight(net.MustAddHost("light-dev"), "light-1", "Desk Lamp", upnp.DeviceOptions{})
	if err := light.Publish(); err != nil {
		return err
	}
	defer light.Unpublish()

	camAdapter, err := bluetooth.NewAdapter(net.MustAddHost("cam-dev"), "cam-dev", bluetooth.AdapterOptions{})
	if err != nil {
		return err
	}
	defer camAdapter.Close()
	cam, err := bluetooth.NewBIPCamera(camAdapter, "Pocket Camera")
	if err != nil {
		return err
	}
	defer cam.Close()
	cam.Capture("demo.jpg", []byte("demo-image"))

	prAdapter, err := bluetooth.NewAdapter(net.MustAddHost("printer-dev"), "printer-dev", bluetooth.AdapterOptions{})
	if err != nil {
		return err
	}
	defer prAdapter.Close()
	printer, err := bluetooth.NewBIPPrinter(prAdapter, "Photo Printer")
	if err != nil {
		return err
	}
	defer printer.Close()

	// Native uMiddle services round out the board.
	shape, err := umiddle.NewShape(
		umiddle.Port{Name: "out", Kind: umiddle.Digital, Direction: umiddle.Output, Type: "control/trigger"},
	)
	if err != nil {
		return err
	}
	if _, err := rt.NewService("Shutter Button", shape, nil); err != nil {
		return err
	}
	textShape, err := umiddle.NewShape(
		umiddle.Port{Name: "out", Kind: umiddle.Digital, Direction: umiddle.Output, Type: "text/plain"},
		umiddle.Port{Name: "in", Kind: umiddle.Digital, Direction: umiddle.Input, Type: "text/plain"},
	)
	if err != nil {
		return err
	}
	if _, err := rt.NewService("Note Pad", textShape, nil); err != nil {
		return err
	}

	board := pads.NewBoard(rt.Internal())
	time.Sleep(*settle)
	fmt.Print(board.Render())

	exec := func(line string) bool {
		line = strings.TrimSpace(line)
		if line == "" {
			return true
		}
		if line == "quit" || line == "exit" {
			return false
		}
		out, err := board.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		if out != "" {
			fmt.Println(out)
		}
		return true
	}

	if *script != "" {
		for _, line := range strings.Split(*script, ";") {
			fmt.Printf("pads> %s\n", strings.TrimSpace(line))
			if !exec(line) {
				return nil
			}
		}
		// Give asynchronous deliveries a moment, then show the result.
		time.Sleep(time.Second)
		fmt.Print(board.Render())
		return nil
	}

	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("pads> ")
	for scanner.Scan() {
		if !exec(scanner.Text()) {
			return nil
		}
		fmt.Print("pads> ")
	}
	return scanner.Err()
}
