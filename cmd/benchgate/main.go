// Command benchgate compares a fresh benchharness -json dump against a
// committed baseline and fails when any row's gated metric regressed by
// more than the tolerance factor — throughput-like metrics (MeasuredMbps,
// LookupsPerSec) by dropping below baseline/tolerance, cost-like metrics
// (AdvertBytesPerSec) by growing past baseline*tolerance. It is deliberately
// loose (default 3x): the committed baselines are measured on an
// unloaded machine, while verify runs compete with whatever else the
// host is doing — the gate exists to catch order-of-magnitude
// regressions (a serialized hot path, an accidental O(n^2)), not to
// flag scheduler noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	tol := flag.Float64("tolerance", 3, "allowed slowdown factor vs the committed baseline")
	allowMissing := flag.Bool("allow-missing", false, "warn instead of fail when a committed row is absent from the fresh run (for smokes that run a subset of the committed points)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintf(os.Stderr, "usage: benchgate [-tolerance N] [-allow-missing] committed.json fresh.json\n")
		os.Exit(2)
	}
	committed := load(flag.Arg(0))
	fresh := load(flag.Arg(1))

	freshRows := make(map[string]map[string]any, len(fresh))
	for _, row := range fresh {
		if name, _ := row["Test"].(string); name != "" {
			freshRows[name] = row
		}
	}

	failed := false
	for _, row := range committed {
		name, _ := row["Test"].(string)
		if name == "" {
			continue
		}
		baseline := rowMetrics(row)
		if len(baseline) == 0 {
			continue
		}
		freshRow, ok := freshRows[name]
		if !ok {
			if *allowMissing {
				fmt.Printf("benchgate: %q missing from fresh run (allowed)\n", name)
			} else {
				fmt.Fprintf(os.Stderr, "benchgate: %q missing from fresh run\n", name)
				failed = true
			}
			continue
		}
		for _, m := range baseline {
			got, ok := freshRow[m.field].(float64)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchgate: %q missing %s in fresh run\n", name, m.field)
				failed = true
				continue
			}
			if m.lowerBetter {
				// A cost metric (bandwidth burned): fresh may not exceed
				// tolerance x baseline.
				if got > m.value**tol {
					fmt.Fprintf(os.Stderr, "benchgate: %q %s regressed: %.2f vs baseline %.2f (ceiling %.2f at %gx tolerance)\n",
						name, m.field, got, m.value, m.value**tol, *tol)
					failed = true
				} else {
					fmt.Printf("benchgate: %q %s ok: %.2f vs baseline %.2f\n", name, m.field, got, m.value)
				}
				continue
			}
			if got < m.value / *tol {
				fmt.Fprintf(os.Stderr, "benchgate: %q %s regressed: %.2f vs baseline %.2f (floor %.2f at %gx tolerance)\n",
					name, m.field, got, m.value, m.value / *tol, *tol)
				failed = true
			} else {
				fmt.Printf("benchgate: %q %s ok: %.2f vs baseline %.2f\n", name, m.field, got, m.value)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func load(path string) []map[string]any {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var rows []map[string]any
	if err := json.Unmarshal(data, &rows); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
		os.Exit(2)
	}
	return rows
}

// gatedMetric is one gateable field of a benchmark row. Throughput-like
// fields regress by dropping; cost-like fields (bytes/sec burned on
// adverts) regress by growing.
type gatedMetric struct {
	field       string
	value       float64
	lowerBetter bool
}

// gatedFields names the row fields benchgate understands. Rows without
// any of them (latency tables, compatibility matrices) are skipped.
var gatedFields = []struct {
	name        string
	lowerBetter bool
	// gateZero gates the field even when the baseline is zero: for
	// counters whose committed value is a hard "none" (dropped messages
	// during a hot config apply), any positive fresh value is a
	// regression — the usual v > 0 presence filter would silently skip
	// the one value that matters.
	gateZero bool
}{
	{"MeasuredMbps", false, false},
	{"LookupsPerSec", false, false},
	{"AchievedPerSec", false, false},
	{"AdvertBytesPerSec", true, false},
	{"IntegratedAdvertBytes", true, false},
	{"PerNodeAdvertBytesPerSec", true, false},
	{"ZoneJoinSeconds", true, false},
	{"RestartToFirstDeliveryMillis", true, false},
	{"ConfigApplyDroppedMsgs", true, true},
}

// rowMetrics extracts every gateable metric present in the row.
func rowMetrics(row map[string]any) []gatedMetric {
	var out []gatedMetric
	for _, f := range gatedFields {
		if v, ok := row[f.name].(float64); ok && (v > 0 || f.gateZero) {
			out = append(out, gatedMetric{field: f.name, value: v, lowerBetter: f.lowerBetter})
		}
	}
	return out
}
