// Command benchgate compares a fresh benchharness -json dump against a
// committed baseline and fails when any row's measured throughput
// regressed by more than the tolerance factor. It is deliberately
// loose (default 3x): the committed baselines are measured on an
// unloaded machine, while verify runs compete with whatever else the
// host is doing — the gate exists to catch order-of-magnitude
// regressions (a serialized hot path, an accidental O(n^2)), not to
// flag scheduler noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	tol := flag.Float64("tolerance", 3, "allowed slowdown factor vs the committed baseline")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintf(os.Stderr, "usage: benchgate [-tolerance N] committed.json fresh.json\n")
		os.Exit(2)
	}
	committed := load(flag.Arg(0))
	fresh := load(flag.Arg(1))

	freshMbps := make(map[string]float64, len(fresh))
	for _, row := range fresh {
		if name, mbps, ok := rowMbps(row); ok {
			freshMbps[name] = mbps
		}
	}

	failed := false
	for _, row := range committed {
		name, base, ok := rowMbps(row)
		if !ok || base <= 0 {
			continue
		}
		got, ok := freshMbps[name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "benchgate: %q missing from fresh run\n", name)
			failed = true
		case got < base / *tol:
			fmt.Fprintf(os.Stderr, "benchgate: %q regressed: %.2f Mbps vs baseline %.2f (floor %.2f at %gx tolerance)\n",
				name, got, base, base / *tol, *tol)
			failed = true
		default:
			fmt.Printf("benchgate: %q ok: %.2f Mbps vs baseline %.2f\n", name, got, base)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func load(path string) []map[string]any {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var rows []map[string]any
	if err := json.Unmarshal(data, &rows); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
		os.Exit(2)
	}
	return rows
}

// rowMbps extracts the row name and its measured throughput. Every
// benchharness throughput experiment dumps rows with Test +
// MeasuredMbps fields; rows without them (latency tables) are skipped.
func rowMbps(row map[string]any) (string, float64, bool) {
	name, _ := row["Test"].(string)
	mbps, ok := row["MeasuredMbps"].(float64)
	if name == "" || !ok {
		return "", 0, false
	}
	return name, mbps, true
}
