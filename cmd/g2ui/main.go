// Command g2ui is the CLI edition of G2 UI, the paper's Geographical
// User Interface (Section 4.2). Gadgets — a Bluetooth camera, a UPnP
// MediaRenderer TV, and a native media store — are placed at coordinates
// in a geographic space; co-locating them triggers geoplay (the paper's
// headline demo: "if a user co-locates a Bluetooth digital camera and a
// UPnP MediaRenderer TV, the images in the camera serve as the source
// for the TV") or geostore.
//
// Usage:
//
//	g2ui [-script 'cmd; cmd; ...'] [-radius 5]
//
// Commands:
//
//	list                 show gadgets, roles, and positions
//	place <name> x y     place a gadget (by profile-name substring)
//	move <name> x y      move a gadget
//	quit                 exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/g2"
	"repro/internal/platform/bluetooth"
	"repro/internal/platform/upnp"
	"repro/umiddle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "g2ui:", err)
		os.Exit(1)
	}
}

func run() error {
	script := flag.String("script", "", "semicolon-separated commands instead of a REPL")
	radius := flag.Float64("radius", 5, "co-location radius in coordinate units")
	settle := flag.Duration("settle", 2*time.Second, "discovery settle time")
	flag.Parse()

	net := umiddle.NewEmulatedNetwork()
	defer net.Close()
	rt, err := umiddle.NewRuntime(umiddle.RuntimeConfig{Node: "g2-node", Network: net})
	if err != nil {
		return err
	}
	defer rt.Close()
	if err := rt.AddUPnPMapper(umiddle.UPnPMapperConfig{SearchInterval: 300 * time.Millisecond}); err != nil {
		return err
	}
	if err := rt.AddBluetoothMapper(umiddle.BluetoothMapperConfig{
		InquiryInterval: 300 * time.Millisecond,
		InquiryWindow:   150 * time.Millisecond,
	}); err != nil {
		return err
	}

	tv := upnp.NewMediaRenderer(net.MustAddHost("tv-dev"), "tv-1", "Living Room TV", upnp.DeviceOptions{})
	if err := tv.Publish(); err != nil {
		return err
	}
	defer tv.Unpublish()
	camAdapter, err := bluetooth.NewAdapter(net.MustAddHost("cam-dev"), "cam-dev", bluetooth.AdapterOptions{})
	if err != nil {
		return err
	}
	defer camAdapter.Close()
	cam, err := bluetooth.NewBIPCamera(camAdapter, "Pocket Camera")
	if err != nil {
		return err
	}
	defer cam.Close()
	cam.Capture("vacation.jpg", []byte("vacation-photo-bytes"))

	// A native media store gadget.
	storeShape, err := umiddle.NewShape(
		umiddle.Port{Name: "media-in", Kind: umiddle.Digital, Direction: umiddle.Input, Type: "image/jpeg"},
	)
	if err != nil {
		return err
	}
	store, err := rt.NewService("Media Store", storeShape, map[string]string{"g2.role": "storage"})
	if err != nil {
		return err
	}
	stored := 0
	store.HandleInput("media-in", func(msg umiddle.Message) error { //nolint:errcheck
		stored++
		fmt.Printf("  [store] archived %d bytes (total %d objects)\n", len(msg.Payload), stored)
		return nil
	})

	space := g2.NewSpace(rt.Internal(), *radius)
	space.OnEvent(func(e g2.Event) {
		fmt.Printf("  [g2] %s: %s -> %s\n", e.Kind, e.Src, e.Dst)
	})

	time.Sleep(*settle)

	resolve := func(name string) (umiddle.TranslatorID, error) {
		got := rt.Lookup(umiddle.Query{NameContains: name})
		if len(got) == 0 {
			return "", fmt.Errorf("no gadget matching %q", name)
		}
		return got[0].ID, nil
	}

	exec := func(line string) bool {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			return true
		}
		switch fields[0] {
		case "quit", "exit":
			return false
		case "list":
			for _, gdt := range space.Gadgets() {
				fmt.Printf("  %-28s %-8s at (%.1f, %.1f)\n",
					gdt.Profile.Name, gdt.Role, gdt.Pos.X, gdt.Pos.Y)
			}
			fmt.Printf("  active co-location compositions: %d\n", space.Links())
		case "place", "move":
			if len(fields) != 4 {
				fmt.Println("usage:", fields[0], "<name> x y")
				return true
			}
			x, errX := strconv.ParseFloat(fields[2], 64)
			y, errY := strconv.ParseFloat(fields[3], 64)
			if errX != nil || errY != nil {
				fmt.Println("bad coordinates")
				return true
			}
			id, err := resolve(fields[1])
			if err != nil {
				fmt.Println("error:", err)
				return true
			}
			pos := g2.Point{X: x, Y: y}
			if fields[0] == "place" {
				err = space.Place(id, pos)
			} else {
				err = space.Move(id, pos)
			}
			if err != nil {
				fmt.Println("error:", err)
			}
		default:
			fmt.Printf("unknown command %q\n", fields[0])
		}
		return true
	}

	if *script != "" {
		for _, line := range strings.Split(*script, ";") {
			fmt.Printf("g2> %s\n", strings.TrimSpace(line))
			if !exec(line) {
				break
			}
			time.Sleep(300 * time.Millisecond) // let compositions fire
		}
		time.Sleep(time.Second)
		if len(tv.Rendered()) > 0 {
			fmt.Printf("  [tv] rendered %d image(s)\n", len(tv.Rendered()))
		}
		return nil
	}

	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("g2> ")
	for scanner.Scan() {
		if !exec(scanner.Text()) {
			return nil
		}
		fmt.Print("g2> ")
	}
	return scanner.Err()
}
