// Command benchharness regenerates every table and figure of the
// paper's evaluation (Section 5) and prints paper-vs-measured rows.
//
// Usage:
//
//	benchharness [-exp all|fig10|sec52|fig11|table1] [-iters N] [-msgs N] [-json]
//
// With -json, each experiment additionally writes its rows to
// BENCH_<exp>.json in the working directory, for machine consumption
// (cross-checking figures against the obs-layer histograms, CI trend
// tracking).
//
// See EXPERIMENTS.md for the recorded results and the shape criteria.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig10, sec52, fig11, table1, qos, hotpath, dirscale, load, restart")
	iters := flag.Int("iters", 10, "mapping iterations per device type (fig10) / actions (sec52)")
	msgs := flag.Int("msgs", 0, "messages per transport test (fig11); 0 = defaults")
	pops := flag.String("pops", "", "comma-separated population points for dirscale (default 100,1000,10000)")
	mesh := flag.String("mesh", "1000x10", "comma-separated POPxNODES mesh points for dirscale (e.g. 100000x50,1000x10); empty skips the mesh phase")
	window := flag.Duration("window", time.Second, "measurement window per dirscale phase")
	bindings := flag.String("bindings", "1000", "comma-separated binding populations for the load experiment")
	rate := flag.Float64("rate", 2000, "offered msgs/sec for the load experiment")
	loadDur := flag.Duration("loaddur", 5*time.Second, "emission window for the load experiment")
	churn := flag.Float64("churn", 0, "injected sink flaps/sec for the load experiment")
	entries := flag.Int("entries", 10000, "directory population for the restart experiment")
	jsonOut := flag.Bool("json", false, "also write each experiment's rows to BENCH_<exp>.json")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	popList, err := parsePops(*pops)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchharness: -pops: %v\n", err)
		os.Exit(2)
	}
	meshList, err := parseMeshPoints(*mesh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchharness: -mesh: %v\n", err)
		os.Exit(2)
	}
	writeJSON := func(name string, v any) error {
		if !*jsonOut {
			return nil
		}
		path := "BENCH_" + name + ".json"
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	run := func(name string, fn func() error) {
		switch *exp {
		case "all", name:
			if err := fn(); err != nil {
				fmt.Fprintf(os.Stderr, "benchharness: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
	known := map[string]bool{"all": true, "fig10": true, "sec52": true, "fig11": true, "table1": true, "qos": true, "hotpath": true, "dirscale": true, "load": true, "restart": true}
	if !known[*exp] {
		fmt.Fprintf(os.Stderr, "benchharness: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	run("table1", func() error { return printTable1(writeJSON) })
	run("fig10", func() error { return printFig10(*iters, writeJSON) })
	run("sec52", func() error { return printSec52(*iters, writeJSON) })
	run("fig11", func() error { return printFig11(*msgs, writeJSON) })
	run("hotpath", func() error { return printHotPath(*msgs, writeJSON) })
	run("qos", func() error { return printQoS(writeJSON) })
	run("dirscale", func() error { return printDirScale(popList, meshList, *window, writeJSON) })
	run("load", func() error { return printLoad(*bindings, *rate, *loadDur, *churn, writeJSON) })
	run("restart", func() error { return printRestart(*entries, writeJSON) })
}

func printRestart(entries int, writeJSON jsonWriter) error {
	fmt.Printf("== Restart chaos: warm restart from the durability log vs cold rediscovery (N=%d, 10 Mbps bus) ==\n", entries)
	logf := func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) }
	row, err := bench.RunRestart(entries, logf)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "test\tentries\tpeers\tcold join ms\trestart ms\twarm/cold\treplayed\tepoch\tcfg applies\tcfg sent\tcfg delivered\tcfg dropped")
	fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.0f\t%.3f\t%d\t%d\t%d\t%d\t%d\t%.0f\n",
		row.Test, row.Entries, row.PeerNodes, row.ColdJoinMillis,
		row.RestartToFirstDeliveryMillis, row.WarmColdRatio,
		row.ReplayedRemotes, row.RestartEpoch, row.ConfigApplies,
		row.ConfigApplySent, row.ConfigApplyDelivered, row.ConfigApplyDroppedMsgs)
	if err := w.Flush(); err != nil {
		return err
	}
	if err := writeJSON("restart", []bench.RestartRow{row}); err != nil {
		return err
	}
	fmt.Println("shape check: a warm restart replays the population from the local log instead of")
	fmt.Println("pulling it back over the wire, so restart-to-first-delivery must sit well under")
	fmt.Println("the cold-join time; hot-reload config applies on a loaded path must drop nothing.")
	fmt.Println()
	return nil
}

func printLoad(bindings string, rate float64, dur time.Duration, churn float64, writeJSON jsonWriter) error {
	pops, err := parsePops(bindings)
	if err != nil {
		return fmt.Errorf("-bindings: %w", err)
	}
	if len(pops) == 0 {
		pops = []int{1000}
	}
	points := make([]bench.LoadPoint, 0, len(pops))
	for _, b := range pops {
		points = append(points, bench.LoadPoint{Bindings: b, Rate: rate, Duration: dur, ChurnPerSec: churn})
	}
	fmt.Printf("== Open-loop load: concurrent dynamic bindings under a fixed arrival schedule ==\n")
	logf := func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) }
	rows, err := bench.RunLoad(points, logf)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "test\tbindings\toffered/s\tachieved/s\tp50 ms\tp99 ms\tp99.9 ms\tsent\tdelivered\tdropped\tflaps\tsetup s")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%.2f\t%.2f\t%.2f\t%d\t%d\t%d\t%d\t%.1f\n",
			r.Test, r.Bindings, r.OfferedPerSec, r.AchievedPerSec,
			r.P50Ms, r.P99Ms, r.P999Ms, r.Sent, r.Delivered, r.Dropped, r.ChurnFlaps, r.SetupSec)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := writeJSON("load", rows); err != nil {
		return err
	}
	fmt.Println("shape check: latency is intended-start -> delivery (open loop): a stall inflates")
	fmt.Println("the tail instead of silently slowing the schedule. Achieved must track offered;")
	fmt.Println("a netemu group-inbox overflow fails the run loudly rather than skewing the tail.")
	fmt.Println()
	return nil
}

// parseMeshPoints parses the -mesh flag ("100000x50,1000x10"); empty
// skips the mesh phase entirely.
func parseMeshPoints(s string) ([]bench.MeshPoint, error) {
	if s == "" {
		return nil, nil
	}
	var out []bench.MeshPoint
	for _, part := range strings.Split(s, ",") {
		pop, nodes, ok := strings.Cut(strings.TrimSpace(part), "x")
		if !ok {
			return nil, fmt.Errorf("bad mesh point %q (want POPxNODES)", part)
		}
		p, err := strconv.Atoi(pop)
		if err != nil || p <= 0 {
			return nil, fmt.Errorf("bad mesh population %q", part)
		}
		n, err := strconv.Atoi(nodes)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad mesh node count %q", part)
		}
		out = append(out, bench.MeshPoint{Population: p, Nodes: n})
	}
	return out, nil
}

// parsePops parses the -pops flag ("100,1000,10000"); empty selects the
// experiment's defaults.
func parsePops(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad population %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// jsonWriter persists one experiment's rows when -json is set.
type jsonWriter func(name string, v any) error

func printTable1(writeJSON jsonWriter) error {
	fmt.Println("== Table 1: mutual compatibility of design choices ==")
	fmt.Println("(O = the two choices can coexist, - = they cannot)")
	choices := core.AllChoices()
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 1, ' ', 0)
	fmt.Fprint(w, "\t")
	for _, c := range choices {
		fmt.Fprintf(w, "%s\t", c)
	}
	fmt.Fprintln(w)
	for _, x := range choices {
		fmt.Fprintf(w, "%s\t", x)
		for _, y := range choices {
			switch {
			case x == y:
				fmt.Fprint(w, "·\t")
			case core.ChoicesCompatible(x, y):
				fmt.Fprint(w, "O\t")
			default:
				fmt.Fprint(w, "-\t")
			}
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nuMiddle's design point (must be pairwise compatible):")
	for _, c := range core.UMiddleDesign() {
		fmt.Printf("  %s  %s\n", c, c.Label())
	}
	if !core.DesignValid(core.UMiddleDesign()) {
		return fmt.Errorf("uMiddle design point is inconsistent")
	}
	design := core.UMiddleDesign()
	labels := make([]string, len(design))
	for i, c := range design {
		labels[i] = c.Label()
	}
	if err := writeJSON("table1", map[string]any{"design": design, "labels": labels, "valid": true}); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func printFig10(iters int, writeJSON jsonWriter) error {
	fmt.Printf("== Figure 10: service-level bridging (translator generation), %d mappings per device ==\n", iters)
	rows, err := bench.RunFigure10(iters)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "device\tports\tpaper inst/s\tmeasured inst/s\tmeasured mean\tsamples")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%v\t%d\n",
			r.Device, r.Ports, r.PaperInstancesPerSec, r.MeasuredInstancesPerSec,
			r.MeasuredMean.Round(time.Microsecond*100), r.Samples)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := writeJSON("fig10", rows); err != nil {
		return err
	}
	fmt.Println("shape check: the clock (14 ports, 3 services) must map slowest among UPnP devices.")
	fmt.Println()
	return nil
}

func printSec52(iters int, writeJSON jsonWriter) error {
	if iters < 10 {
		iters = 10
	}
	fmt.Printf("== Section 5.2: device-level bridging, %d operations per case ==\n", iters)
	upnpRow, err := bench.RunSec52UPnP(iters)
	if err != nil {
		return err
	}
	btRow, err := bench.RunSec52Bluetooth(iters)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "case\tpaper total\tpaper native\tmeasured total\tmeasured native\tmeasured uMiddle")
	for _, r := range []bench.Sec52Row{upnpRow, btRow} {
		native := "-"
		if r.PaperNative > 0 {
			native = r.PaperNative.String()
		}
		mNative := "-"
		if r.MeasuredNative > 0 {
			mNative = r.MeasuredNative.Round(time.Microsecond * 100).String()
		}
		fmt.Fprintf(w, "%s\t%v\t%s\t%v\t%s\t%v\n",
			r.Case, r.PaperTotal, native,
			r.MeasuredTotal.Round(time.Microsecond*100), mNative,
			r.MeasuredUMiddle.Round(time.Microsecond*100))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := writeJSON("sec52", []bench.Sec52Row{upnpRow, btRow}); err != nil {
		return err
	}
	fmt.Println("shape check: the infrastructure itself contributes little to the overhead (paper Section 5.2).")
	fmt.Println()
	return nil
}

func printFig11(msgs int, writeJSON jsonWriter) error {
	fmt.Println("== Figure 11: transport-level bridging throughput (1400-byte messages, 10 Mbps links) ==")
	rows, err := bench.RunFigure11(msgs)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "test\tpaper Mbps\tmeasured Mbps\tmessages\telapsed")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.2f\t%d\t%v\n",
			r.Test, r.PaperMbps, r.MeasuredMbps, r.Messages, r.Elapsed.Round(time.Millisecond))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := writeJSON("fig11", rows); err != nil {
		return err
	}
	fmt.Println("shape check: TCP > MB > RMI > RMI-MB, bridged paths pay marshal/unmarshal twice.")
	fmt.Println()
	return nil
}

func printHotPath(msgs int, writeJSON jsonWriter) error {
	fmt.Println("== Hot path: uMiddle deliver throughput (1400-byte messages, unlimited link) ==")
	rows, err := bench.RunHotPath(msgs)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "test\tpaths\tmeasured Mbps\tmsgs/s\tmessages\telapsed")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.0f\t%d\t%v\n",
			r.Test, r.Paths, r.MeasuredMbps, r.MsgsPerSec, r.Messages, r.Elapsed.Round(time.Millisecond))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := writeJSON("hotpath", rows); err != nil {
		return err
	}
	fmt.Println("shape check: software cost, not the emulated wire, is the ceiling here;")
	fmt.Println("with trivial sinks the shared connection pipeline bounds both rows, so")
	fmt.Println("x4 must stay close to x1 (a per-connection delivery queue would collapse")
	fmt.Println("it when any destination stalls — see TestSlowDestinationDoesNotBlockOthers).")
	fmt.Println()
	return nil
}

func printDirScale(pops []int, mesh []bench.MeshPoint, window time.Duration, writeJSON jsonWriter) error {
	fmt.Println("== Directory at scale: population vs lookup rate and advert bandwidth ==")
	rows, err := bench.RunDirScale(pops, window)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "test\tpop\tnodes\tconverge\tlookups/s\tmean\tp99\tadvert B/s\tobs pop\tobs integ B")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%.0f\t%v\t%v\t%.0f\t%d\t%.0f\n",
			r.Test, r.Population, r.Nodes, r.ConvergeTime.Round(time.Millisecond),
			r.LookupsPerSec, r.LookupMean.Round(time.Microsecond), r.LookupP99.Round(time.Microsecond),
			r.AdvertBytesPerSec, r.ObserverPopulation, r.IntegratedAdvertBytes)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	merged := make([]any, 0, len(rows)+len(mesh))
	for _, r := range rows {
		merged = append(merged, r)
	}
	if len(mesh) > 0 {
		fmt.Println("\n-- federated mesh: chained zones, interest-filtered, relayed adverts --")
		meshRows, err := bench.RunDirScaleMesh(mesh, window)
		if err != nil {
			return err
		}
		mw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
		fmt.Fprintln(mw, "test\tpop\tnodes\tconverge\tper-node advert B/s\tzone join\t3-node baseline")
		for _, r := range meshRows {
			fmt.Fprintf(mw, "%s\t%d\t%d\t%v\t%.0f\t%v\t%v\n",
				r.Test, r.Population, r.Nodes, r.ConvergeTime.Round(time.Millisecond),
				r.PerNodeAdvertBytesPerSec, r.ZoneJoinTime.Round(time.Millisecond),
				r.Baseline3JoinTime.Round(time.Millisecond))
			merged = append(merged, r)
		}
		if err := mw.Flush(); err != nil {
			return err
		}
	}
	if err := writeJSON("dirscale", merged); err != nil {
		return err
	}
	fmt.Println("shape check: lookup rate must not collapse with population (indexed, not O(N) scans),")
	fmt.Println("steady-state advert bandwidth must not grow O(N) (delta anti-entropy, not full-state),")
	fmt.Println("and the filtered observer's integrated advert bytes must sit well under the")
	fmt.Println("unfiltered observer's at the same population (interest-driven selective propagation).")
	fmt.Println("mesh: per-node advert bandwidth must stay population-independent across the chain,")
	fmt.Println("and a fresh zone must join within a small factor of the 3-node baseline.")
	fmt.Println()
	return nil
}

func printQoS(writeJSON jsonWriter) error {
	fmt.Println("== QoS ablation (paper Section 5.3 / future work): fast producer, slow consumer ==")
	rows, err := bench.RunQoSAblation(time.Second, 20*time.Millisecond)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tproduced\tdelivered\tdropped\tbuffer high-water\tmean staleness")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\t%v\n",
			r.Policy, r.Produced, r.Delivered, r.Dropped, r.HighWater,
			r.MeanStaleness.Round(time.Microsecond*100))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := writeJSON("qos", rows); err != nil {
		return err
	}
	fmt.Println("shape check: block accumulates (stale, no drops); dropping policies bound staleness;")
	fmt.Println("latest-only is freshest. This is the QoS control the paper names as major future work.")
	fmt.Println()
	return nil
}
