// Command umiddled boots a complete uMiddle deployment in one process:
// an emulated network, one or more runtime nodes with platform mappers,
// and a population of emulated native devices. It then logs directory
// events as devices are mapped and unmapped and prints a final snapshot
// of the intermediary semantic space.
//
// Usage:
//
//	umiddled [-nodes N] [-duration 5s] [-verbose] [-http :8080]
//
// With -http, the deployment's observability layer is served over HTTP
// for the lifetime of the run: /metrics renders every node's counters
// and latency histograms in the Prometheus text format (all runtimes
// share one registry; series carry a node label), and /trace returns
// the recent event-trace ring (translator mapped/unmapped, path
// connect/disconnect, redial, drop, expiry) as JSON.
//
// The default scenario is the paper's smart room: UPnP light, clock and
// MediaRenderer TV; Bluetooth BIP camera and HID mouse; a Berkeley mote;
// an RMI echo service; and an XML web service — spread across the
// runtime nodes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/platform/bluetooth"
	"repro/internal/platform/motes"
	"repro/internal/platform/rmi"
	"repro/internal/platform/upnp"
	"repro/internal/platform/webservice"
	"repro/umiddle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "umiddled:", err)
		os.Exit(1)
	}
}

// serveObservability exposes the deployment's registry over real HTTP:
// /metrics in the Prometheus text format, /trace as JSON. It returns a
// shutdown func.
func serveObservability(addr string, reg *umiddle.ObsRegistry) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := reg.Trace().Events()
		if events == nil {
			events = []umiddle.TraceEvent{}
		}
		if err := json.NewEncoder(w).Encode(events); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // shut down via stop()
	fmt.Printf("umiddled: observability at http://%s/metrics and http://%s/trace\n", ln.Addr(), ln.Addr())
	return func() { srv.Close() }, nil
}

func run() error {
	nodes := flag.Int("nodes", 2, "number of uMiddle runtime nodes")
	duration := flag.Duration("duration", 5*time.Second, "how long to run")
	verbose := flag.Bool("verbose", false, "log runtime internals")
	httpAddr := flag.String("http", "", "serve /metrics (Prometheus) and /trace (JSON) on this address, e.g. :8080")
	flag.Parse()
	if *nodes < 1 {
		return fmt.Errorf("need at least one node")
	}

	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	net := umiddle.NewEmulatedNetwork()
	defer net.Close()

	// One registry across every runtime: series carry a node label, so
	// a single /metrics endpoint covers the whole deployment.
	obsReg := umiddle.NewObsRegistry()
	runtimes := make([]*umiddle.Runtime, *nodes)
	for i := range runtimes {
		rt, err := umiddle.NewRuntime(umiddle.RuntimeConfig{
			Node:    fmt.Sprintf("h%d", i+1),
			Network: net,
			Logger:  logger,
			Obs:     obsReg,
		})
		if err != nil {
			return err
		}
		defer rt.Close()
		runtimes[i] = rt
	}
	if *httpAddr != "" {
		stop, err := serveObservability(*httpAddr, obsReg)
		if err != nil {
			return err
		}
		defer stop()
	}
	h1 := runtimes[0]
	h2 := h1
	if len(runtimes) > 1 {
		h2 = runtimes[1]
	}

	// Event log: every mapping/unmapping as seen from h1.
	h1.OnMapped(func(p umiddle.Profile) {
		fmt.Printf("%s  + mapped   %-28s %-12s %s\n",
			time.Now().Format("15:04:05.000"), p.Name, p.Platform, p.ID)
	})
	h1.OnUnmapped(func(id umiddle.TranslatorID) {
		fmt.Printf("%s  - unmapped %s\n", time.Now().Format("15:04:05.000"), id)
	})

	// Mappers: UPnP + Bluetooth + motes on h1; RMI + MediaBroker + web
	// services on h2.
	if err := h1.AddUPnPMapper(umiddle.UPnPMapperConfig{SearchInterval: 500 * time.Millisecond}); err != nil {
		return err
	}
	if err := h1.AddBluetoothMapper(umiddle.BluetoothMapperConfig{
		InquiryInterval: 500 * time.Millisecond,
		InquiryWindow:   200 * time.Millisecond,
	}); err != nil {
		return err
	}
	if err := h1.AddMotesMapper(umiddle.MotesMapperConfig{}); err != nil {
		return err
	}

	// Native devices.
	lightHost := net.MustAddHost("light-dev")
	light := upnp.NewBinaryLight(lightHost, "light-1", "Desk Lamp", upnp.DeviceOptions{})
	if err := light.Publish(); err != nil {
		return err
	}
	defer light.Unpublish()

	clockHost := net.MustAddHost("clock-dev")
	clock := upnp.NewClock(clockHost, "clock-1", "Wall Clock", upnp.DeviceOptions{})
	if err := clock.Publish(); err != nil {
		return err
	}
	defer clock.Unpublish()

	tvHost := net.MustAddHost("tv-dev")
	tv := upnp.NewMediaRenderer(tvHost, "tv-1", "Living Room TV", upnp.DeviceOptions{})
	if err := tv.Publish(); err != nil {
		return err
	}
	defer tv.Unpublish()

	camAdapter, err := bluetooth.NewAdapter(net.MustAddHost("cam-dev"), "cam-dev", bluetooth.AdapterOptions{})
	if err != nil {
		return err
	}
	defer camAdapter.Close()
	cam, err := bluetooth.NewBIPCamera(camAdapter, "Pocket Camera")
	if err != nil {
		return err
	}
	defer cam.Close()
	cam.Capture("demo.jpg", []byte("demo-image-bytes"))

	mouseAdapter, err := bluetooth.NewAdapter(net.MustAddHost("mouse-dev"), "mouse-dev", bluetooth.AdapterOptions{})
	if err != nil {
		return err
	}
	defer mouseAdapter.Close()
	mouse, err := bluetooth.NewHIDMouse(mouseAdapter, "Travel Mouse")
	if err != nil {
		return err
	}
	defer mouse.Close()

	mote, err := motes.StartMote(net.MustAddHost("mote-1"), h1.Node(), 1, motes.MoteOptions{})
	if err != nil {
		return err
	}
	defer mote.Stop()

	// RMI + web service on h2's side of the network.
	rmiHost := net.MustAddHost("rmi-dev")
	reg, err := rmi.NewRegistry(rmiHost)
	if err != nil {
		return err
	}
	defer reg.Close()
	srv, err := rmi.NewServer(rmiHost, 0)
	if err != nil {
		return err
	}
	defer srv.Close()
	rc := rmi.NewRegistryClient(rmiHost, "rmi-dev")
	if err := rc.Bind(context.Background(), "echo", rmi.ExportEcho(srv)); err != nil {
		return err
	}
	if err := h2.AddRMIMapper(umiddle.RMIMapperConfig{RegistryHost: "rmi-dev"}); err != nil {
		return err
	}

	wsHost, err := webservice.NewHost(net.MustAddHost("ws-dev"), 0)
	if err != nil {
		return err
	}
	defer wsHost.Close()
	wsHost.Register("greeter", "xml-rpc", func(method string, params map[string]string) (map[string]string, error) {
		return map[string]string{"greeting": "hello " + params["name"]}, nil
	})
	if err := h2.AddWebServiceMapper(umiddle.WebServiceMapperConfig{BaseURLs: []string{wsHost.URL()}}); err != nil {
		return err
	}

	fmt.Printf("umiddled: %d runtime node(s) up; running for %v\n", *nodes, *duration)
	time.Sleep(*duration)

	// Final snapshot of the intermediary semantic space.
	profiles := h1.Lookup(umiddle.Query{})
	sort.Slice(profiles, func(i, j int) bool { return profiles[i].ID < profiles[j].ID })
	fmt.Printf("\nintermediary semantic space (%d translators):\n", len(profiles))
	for _, p := range profiles {
		fmt.Printf("  %-34s %-12s node=%-3s ports=%d\n", p.Name, p.Platform, p.Node, p.Shape.Len())
		for _, port := range p.Shape.Ports() {
			fmt.Printf("      %-14s %-8s %-6s %s\n", port.Name, port.Kind, port.Direction, port.Type)
		}
	}
	return nil
}
