// Package repro_test hosts the repository-level benchmark suite: one
// benchmark per table and figure in the paper's evaluation (Section 5).
//
//	Figure 10  -> BenchmarkServiceLevelBridging/*
//	Section 5.2 -> BenchmarkDeviceLevelBridging/*
//	Figure 11  -> BenchmarkTransportLevelBridging/*
//	Table 1    -> BenchmarkDesignSpaceChart (the chart itself is a unit
//	              test; the benchmark covers the compatibility predicate)
//
// Each benchmark reports the metric in the paper's own unit via
// b.ReportMetric: instances/s for Figure 10, ms/op for Section 5.2, and
// Mbps for Figure 11. cmd/benchharness prints the side-by-side
// paper-vs-measured tables; see EXPERIMENTS.md.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// benchFig10 runs the mapping experiment for one device and reports the
// instantiation rate.
func benchFig10(b *testing.B, device string) {
	b.Helper()
	row, err := bench.RunFigure10Device(device, b.N)
	if err != nil {
		b.Fatalf("figure 10 %s: %v", device, err)
	}
	b.ReportMetric(row.MeasuredInstancesPerSec, "instances/s")
	b.ReportMetric(float64(row.MeasuredMean.Microseconds())/1000, "ms/mapping")
}

// BenchmarkServiceLevelBridging reproduces Figure 10: translator
// generation time per device type after native discovery.
func BenchmarkServiceLevelBridging(b *testing.B) {
	b.Run("UPnP_Clock", func(b *testing.B) { benchFig10(b, bench.DeviceClock) })
	b.Run("UPnP_AirConditioner", func(b *testing.B) { benchFig10(b, bench.DeviceAirCon) })
	b.Run("UPnP_Light", func(b *testing.B) { benchFig10(b, bench.DeviceLight) })
	b.Run("Bluetooth_HIDMouse", func(b *testing.B) { benchFig10(b, bench.DeviceHIDMouse) })
}

// BenchmarkDeviceLevelBridging reproduces the Section 5.2 in-text
// measurements: UPnP light-switch control latency (paper: 160 ms total,
// 150 ms in the UPnP domain) and Bluetooth mouse-click translation
// (paper: 23 ms).
func BenchmarkDeviceLevelBridging(b *testing.B) {
	b.Run("UPnP_LightSwitch", func(b *testing.B) {
		row, err := bench.RunSec52UPnP(b.N)
		if err != nil {
			b.Fatalf("sec 5.2 upnp: %v", err)
		}
		b.ReportMetric(float64(row.MeasuredTotal.Microseconds())/1000, "ms/action")
		b.ReportMetric(float64(row.MeasuredNative.Microseconds())/1000, "ms-native/action")
		b.ReportMetric(float64(row.MeasuredUMiddle.Microseconds())/1000, "ms-umiddle/action")
	})
	b.Run("Bluetooth_MouseClick", func(b *testing.B) {
		row, err := bench.RunSec52Bluetooth(b.N)
		if err != nil {
			b.Fatalf("sec 5.2 bluetooth: %v", err)
		}
		b.ReportMetric(float64(row.MeasuredTotal.Microseconds())/1000, "ms/click")
	})
}

// benchFig11 runs one transport configuration with at least minMsgs
// messages and reports throughput.
func benchFig11(b *testing.B, minMsgs int, run func(msgs int) (bench.Figure11Row, error)) {
	b.Helper()
	msgs := b.N
	if msgs < minMsgs {
		msgs = minMsgs
	}
	row, err := run(msgs)
	if err != nil {
		b.Fatalf("figure 11: %v", err)
	}
	b.ReportMetric(row.MeasuredMbps, "Mbps")
}

// BenchmarkTransportLevelBridging reproduces Figure 11: 1400-byte
// message throughput on the emulated 10 Mbps three-node testbed.
func BenchmarkTransportLevelBridging(b *testing.B) {
	b.Run("TCP_Baseline", func(b *testing.B) { benchFig11(b, 500, bench.RunFigure11TCP) })
	b.Run("MB", func(b *testing.B) { benchFig11(b, 400, bench.RunFigure11MB) })
	b.Run("RMI", func(b *testing.B) { benchFig11(b, 200, bench.RunFigure11RMI) })
	b.Run("RMI_MB", func(b *testing.B) { benchFig11(b, 200, bench.RunFigure11RMIMB) })
}

// BenchmarkDesignSpaceChart covers Table 1's compatibility predicate
// (the chart's correctness is asserted by
// core.TestDesignSpaceCompatibilityChart).
func BenchmarkDesignSpaceChart(b *testing.B) {
	choices := core.AllChoices()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, x := range choices {
			for _, y := range choices {
				core.ChoicesCompatible(x, y)
			}
		}
	}
}

// BenchmarkQoSAblation runs the Section 5.3 bottleneck ablation: a fast
// producer into a slow consumer under each translation-buffer policy.
// It reports the mean staleness of delivered messages — the
// "accumulation in the translation buffer" the paper warns about.
func BenchmarkQoSAblation(b *testing.B) {
	rows, err := bench.RunQoSAblation(500*time.Millisecond, 10*time.Millisecond)
	if err != nil {
		b.Fatalf("qos ablation: %v", err)
	}
	for _, row := range rows {
		b.ReportMetric(float64(row.MeanStaleness.Microseconds())/1000, "ms-staleness-"+row.Policy.String())
	}
	_ = b.N
}
